"""Out-of-core characterization: the full §4 report from chunk partials.

:func:`characterize_streaming` reproduces :func:`repro.core.report.characterize`
byte-for-byte without ever materializing the whole event table.  It makes
one pass over the chunks of a :class:`~repro.trace.store.TraceSource`,
folding each chunk into a mergeable :class:`ChunkAccumulator`, then
finalizes every analysis family from the merged partials.

Two engines share the chunk scan:

- **fused** (the default): *every* family — jobstats, filestats,
  requests, modes, intervals, sequentiality, **and** sharing/interjob —
  folds into the one chunk walk, so each event is touched exactly once.
  The per-family modules reduce to finalizers over the fused state:

  - jobstats need only the job side table, which travels whole with any
    source;
  - filestats / requests / modes / intervals reduce to per-file or
    per-size counting.  All byte totals are integer sums (exact in
    float64 far beyond trace scale), medians fall out of size→count
    histograms, and the distinct-pair tables are sorted-array unions —
    all order-independent;
  - sequentiality is chunk-mergeable because chunks are contiguous
    slices of the time-sorted stream, so each (file, node) group's
    request order is preserved across chunk boundaries.  The accumulator
    carries each group's last request out of every chunk and resolves
    the boundary transition when the group's next chunk (or the merge of
    two accumulators) supplies the following request;
  - sharing / interjob fold as (a) per-(file, node) and per-(file, job)
    open/close window extrema (min open time, max close time — exactly
    the rows of :meth:`repro.trace.index.TraceIndex._span_table`) and
    (b) canonical per-(file, node) byte- and block-interval unions.
    Interval union is associative and the union of maximal runs is
    unique, so incremental per-chunk unions merged at finalize time are
    bit-identical to the full-frame union; the finalizer then runs the
    *same* :func:`repro.core.sharing._overlap_fraction` sweep the index
    path runs, on identical inputs.

- **windowed** (the escape hatch): the pre-fused behavior, where
  sharing/interjob fall back to *windowed full-index analysis* — files
  are partitioned into contiguous id windows sized by their event
  counts, the chunks are re-streamed once gathering each window's events
  into a small sub-frame, and the existing index-based analyzers run per
  window.  Memory stays bounded by the window budget even when the
  fused interval-union state would not fit (adversarially fragmented
  access patterns).

The accumulator itself is vectorized: each chunk contributes small
canonical numpy arrays (deduplicated pairs, per-key counts, unioned
runs) that are concatenated and re-aggregated lazily, so no per-event or
per-group Python loop runs during the scan.  Partials merge in a fixed
left-to-right order over :func:`repro.util.pool.map_tasks` workers, so
parallel and serial runs are byte-identical too.
"""

from __future__ import annotations

import gc
import time
from functools import partial

import numpy as np

from repro import obs
from repro.core.filestats import FilePopulation, size_cdf_from_table
from repro.core.jobstats import (
    concurrency_profile_from_jobs,
    files_per_job_from_counts,
    node_count_distribution_from_jobs,
)
from repro.core.modes import ModeUsage
from repro.core.report import WorkloadReport
from repro.core.requests import summary_from_size_counts
from repro.core.sequentiality import FileRegularity
from repro.core.sharing import SharingResult, _overlap_fraction, sharing_per_file
from repro.errors import AnalysisError
from repro.trace.frame import EVENT_DTYPE, FileTable, JobTable, TraceFrame
from repro.trace.records import NO_VALUE, EventKind
from repro.trace.store import TraceSource
from repro.util.pool import map_tasks
from repro.util.units import BLOCK_SIZE

__all__ = ["ChunkAccumulator", "characterize_streaming", "finalize_fused"]

_OPEN = int(EventKind.OPEN)
_CLOSE = int(EventKind.CLOSE)
_READ = int(EventKind.READ)
_WRITE = int(EventKind.WRITE)

_SHIFT = np.int64(2**32)
_HALF = np.int64(2**31)
_LOW = np.int64(0xFFFFFFFF)

#: engines accepted by :func:`characterize_streaming`
STREAM_ENGINES = ("fused", "windowed")


def _pack_key(file_ids: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """One int64 key per (file, node); both are non-negative int32s."""
    return file_ids * _SHIFT + nodes


def _pack_pair(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The index's pair packing: lexicographic (a, b) order, b may be
    negative (``key >> 32`` recovers ``a``, ``(key & LOW) - HALF`` is
    ``b``)."""
    return a * _SHIFT + (b + _HALF)


def _group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Start indices of the contiguous equal-key runs in a sorted array."""
    if len(sorted_keys) == 0:
        return np.empty(0, dtype=np.int64)
    new = np.ones(len(sorted_keys), dtype=bool)
    new[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return np.flatnonzero(new)


def _dedupe_pairs(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unique (a, b) rows in lexicographic order."""
    order = np.lexsort((b, a))
    a, b = a[order], b[order]
    if len(a) == 0:
        return a, b
    keep = np.ones(len(a), dtype=bool)
    keep[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
    return a[keep], b[keep]


def _in_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Membership of ``needles`` in the sorted unique ``haystack``."""
    if len(haystack) == 0:
        return np.zeros(len(needles), dtype=bool)
    pos = np.searchsorted(haystack, needles)
    found = pos < len(haystack)
    found &= haystack[np.minimum(pos, len(haystack) - 1)] == needles
    return found


def _union_runs(
    keys: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical per-key interval union: maximal runs, grouped by key
    ascending and start-sorted within a key.

    Uses the same merge rule as :func:`repro.core.sharing._merge_per_node`
    (touching intervals coalesce), with the per-group offset trick for an
    exact segmented running max.  The union of maximal runs is unique, so
    this is idempotent and associative — incremental per-chunk unions
    merged later equal the one-shot union bit for bit.
    """
    if len(keys) == 0:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    order = np.lexsort((starts, keys))
    k, s, e = keys[order], starts[order], ends[order]
    new_key = np.ones(len(k), dtype=bool)
    new_key[1:] = k[1:] != k[:-1]
    group = np.cumsum(new_key) - 1
    span = np.int64(int(e.max()) + 1)
    if int(span) * int(group[-1] + 1) >= 2**62:  # pragma: no cover - pathological
        return _union_runs_slow(k, s, e, new_key)
    off = group * span
    running_max = np.maximum.accumulate(e + off) - off
    is_new = new_key.copy()
    if len(s) > 1:
        is_new[1:] |= s[1:] > running_max[:-1]
    run_starts = np.flatnonzero(is_new)
    return k[run_starts], s[run_starts], np.maximum.reduceat(e, run_starts)


def _union_runs_slow(k, s, e, new_key):  # pragma: no cover - pathological
    out_k: list[int] = []
    out_s: list[int] = []
    out_e: list[int] = []
    for key, a, b, fresh in zip(k.tolist(), s.tolist(), e.tolist(), new_key.tolist()):
        if not fresh and out_s and a <= out_e[-1]:
            out_e[-1] = max(out_e[-1], b)
        else:
            out_k.append(key)
            out_s.append(a)
            out_e.append(b)
    return (
        np.asarray(out_k, dtype=np.int64),
        np.asarray(out_s, dtype=np.int64),
        np.asarray(out_e, dtype=np.int64),
    )


# -- part aggregators ---------------------------------------------------------
#
# The accumulator defers everything order-independent: each chunk appends
# raw per-chunk arrays to per-part lists, and these aggregators collapse a
# list to one canonical entry.  All are idempotent and associative, so a
# part may hold any mix of raw chunk contributions and earlier collapses —
# the scan itself never sorts what the aggregator will sort again.

#: collapse a part back to its canonical aggregate once this many raw
#: chunk contributions pile up — bounds accumulator memory on long scans
#: while keeping the common few-chunk case down to a single sort per part
_COLLAPSE_EVERY = 64


def _cat(arrays: list[np.ndarray]) -> np.ndarray:
    return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)


def _agg_counts(parts: list, ncols: int = 1) -> tuple:
    if not parts:
        e = np.empty(0, dtype=np.int64)
        return (e,) + tuple(e.copy() for _ in range(ncols))
    keys = _cat([p[0] for p in parts])
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    starts = _group_starts(ks)
    out = tuple(
        np.add.reduceat(_cat([p[i + 1] for p in parts])[order], starts)
        for i in range(ncols)
    )
    return (ks[starts],) + out


def _agg_counts3(parts: list) -> tuple:
    return _agg_counts(parts, ncols=3)


def _agg_reduce(parts: list, ufunc) -> tuple:
    if not parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
    keys = _cat([p[0] for p in parts])
    vals = _cat([p[1] for p in parts])
    order = np.argsort(keys, kind="stable")
    ks = keys[order]
    starts = _group_starts(ks)
    return ks[starts], ufunc.reduceat(vals[order], starts)


def _agg_min(parts: list) -> tuple:
    return _agg_reduce(parts, np.minimum)


def _agg_max(parts: list) -> tuple:
    return _agg_reduce(parts, np.maximum)


def _agg_first(parts: list) -> tuple:
    """Per key, the value from its earliest appearance (parts are kept in
    chunk order, so concatenation order is stream order)."""
    if not parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    keys = _cat([p[0] for p in parts])
    vals = _cat([p[1] for p in parts])
    uk, idx = np.unique(keys, return_index=True)
    return uk, vals[idx]


def _agg_unique(parts: list) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.unique(_cat(parts))


def _agg_pairs(parts: list) -> tuple:
    if not parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy()
    return _dedupe_pairs(_cat([p[0] for p in parts]), _cat([p[1] for p in parts]))


def _agg_runs(parts: list) -> tuple:
    if not parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    return _union_runs(
        _cat([p[0] for p in parts]),
        _cat([p[1] for p in parts]),
        _cat([p[2] for p in parts]),
    )


_PART_AGGS = {
    "events": _agg_counts,          # (file, event count)
    "opens": _agg_counts,           # (file, open count)
    "mode_counts": _agg_counts,     # (mode, open count)
    "first_mode": _agg_first,       # (file, mode of first OPEN)
    "open_pairs": _agg_unique,      # packed (job, file)
    "read_sizes": _agg_counts,      # (size, count)
    "write_sizes": _agg_counts,
    "read_files": _agg_unique,
    "written_files": _agg_unique,
    "size_pairs": _agg_pairs,       # (file, request size)
    "interval_pairs": _agg_pairs,   # (file, interval)
    "trans": _agg_counts3,          # (file, transitions, sequential, consecutive)
    "node_open": _agg_min,          # (packed (file, node), first open time)
    "node_close": _agg_max,         # (packed (file, node), last close time)
    "job_open": _agg_min,
    "job_close": _agg_max,
    "byte_runs": _agg_runs,         # (packed (file, node), start, end)
    "block_runs": _agg_runs,
}


class ChunkAccumulator:
    """Mergeable partial state of *every* characterization family.

    ``update`` folds in one chunk; ``merge`` combines two accumulators
    covering *adjacent* chunk ranges (left before right).  State is
    numpy arrays throughout — per-chunk contributions are appended to
    part lists and collapsed lazily (:meth:`part`), so the scan runs no
    per-group Python loops and instances pickle compactly across the
    worker pool after :meth:`compact`.

    ``collect_spans`` gates the sharing/interjob state (open/close span
    extrema and byte/block interval unions); the windowed engine turns
    it off because it recomputes sharing from sub-frames.
    """

    def __init__(self, collect_spans: bool = True) -> None:
        self.collect_spans = collect_spans
        self.n_events = 0
        self.n_opens = 0
        self.n_transfers = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._parts: dict[str, list] = {name: [] for name in _PART_AGGS}
        # id of a part's entry when the list is exactly its own collapsed
        # aggregate — lets part() skip redundant re-aggregation
        self._agg_ids: dict[str, int] = {}
        # sequentiality boundary state, keyed by packed (file, node):
        # carry = (last offset, last end) seen so far; boundary-first =
        # (file, first offset) awaiting a *preceding* request at merge time
        e = np.empty(0, dtype=np.int64)
        self._carry_keys, self._carry_off, self._carry_end = e, e.copy(), e.copy()
        self._bf_keys, self._bf_file, self._bf_off = e.copy(), e.copy(), e.copy()

    # -- aggregated views ----------------------------------------------------

    def part(self, name: str):
        """The canonical aggregate of one deferred part (cached)."""
        parts = self._parts[name]
        if len(parts) == 1 and self._agg_ids.get(name) == id(parts[0]):
            return parts[0]
        agg = _PART_AGGS[name](parts)
        self._parts[name] = [agg]
        self._agg_ids[name] = id(agg)
        return agg

    def compact(self, runs: bool = True) -> "ChunkAccumulator":
        """Collapse every part to its canonical aggregate (bounds the
        pickle size shipped back from pool workers).  ``runs=False``
        leaves the byte/block run parts raw — the serial path skips
        their union entirely because the sharing finalizer re-unions
        only the candidate files' rows.  Returns self."""
        for name in _PART_AGGS:
            if not runs and name in ("byte_runs", "block_runs"):
                continue
            if self._parts[name]:
                self.part(name)
        return self

    # -- folding in one chunk ------------------------------------------------

    def update(self, events: np.ndarray) -> None:
        n = len(events)
        if n == 0:
            return
        self.n_events += n
        kind = events["kind"]
        files64 = events["file"].astype(np.int64)

        valid = files64 != NO_VALUE
        if valid.any():
            vf = files64[valid]
            self._parts["events"].append((vf, np.ones(len(vf), dtype=np.int64)))

        opens = events[kind == _OPEN]
        if len(opens):
            self._update_opens(opens)
        read_mask = kind == _READ
        write_mask = kind == _WRITE
        self._update_sizes(events, read_mask, "read_sizes", "read_files",
                           "bytes_read")
        self._update_sizes(events, write_mask, "write_sizes", "written_files",
                           "bytes_written")
        tmask = read_mask | write_mask
        if tmask.any():
            self._update_transfers(events[tmask])
        if self.collect_spans:
            self._update_spans(opens, events[kind == _CLOSE])
        for name, parts in self._parts.items():
            if len(parts) >= _COLLAPSE_EVERY:
                self.part(name)

    def _update_opens(self, opens: np.ndarray) -> None:
        self.n_opens += len(opens)
        of = opens["file"].astype(np.int64)
        modes = opens["mode"].astype(np.int64)
        ones = np.ones(len(of), dtype=np.int64)
        self._parts["mode_counts"].append((modes, ones))
        self._parts["opens"].append((of, ones))
        # raw chunk order *is* stream order, which _agg_first relies on
        self._parts["first_mode"].append((of, modes))
        self._parts["open_pairs"].append(
            _pack_pair(opens["job"].astype(np.int64), of)
        )

    def _update_sizes(self, events, mask, size_part, file_part, bytes_attr):
        if not mask.any():
            return
        sizes = events["size"][mask].astype(np.int64)
        setattr(self, bytes_attr, getattr(self, bytes_attr) + int(sizes.sum()))
        self._parts[size_part].append(
            (sizes, np.ones(len(sizes), dtype=np.int64))
        )
        self._parts[file_part].append(events["file"][mask].astype(np.int64))

    def _update_transfers(self, tr: np.ndarray) -> None:
        files = tr["file"].astype(np.int64)
        sizes = tr["size"].astype(np.int64)
        self.n_transfers += len(tr)
        self._parts["size_pairs"].append((files, sizes))

        # group by (file, node); the stable sort keeps time order within
        # groups, matching the index's lexsort((node, file)) view
        key = _pack_key(files, tr["node"].astype(np.int64))
        order = np.argsort(key, kind="stable")
        keys = key[order]
        off = tr["offset"].astype(np.int64)[order]
        end = off + sizes[order]
        grp_files = files[order]
        m = len(keys)
        starts = _group_starts(keys)
        gend = np.append(starts[1:], m)
        same = np.ones(m, dtype=bool)
        same[starts] = False
        prev_off = np.empty(m, dtype=np.int64)
        prev_end = np.empty(m, dtype=np.int64)
        prev_off[1:] = off[:-1]
        prev_end[1:] = end[:-1]

        # stitch each group's first request to the carry from earlier
        # chunks (or queue it for merge-time stitching)
        gkeys = keys[starts]
        found = _in_sorted(self._carry_keys, gkeys)
        if found.any():
            pos = np.searchsorted(self._carry_keys, gkeys[found])
            hit_rows = starts[found]
            prev_off[hit_rows] = self._carry_off[pos]
            prev_end[hit_rows] = self._carry_end[pos]
            same[hit_rows] = True
        fresh = ~found
        if fresh.any():
            cand = gkeys[fresh]
            new = ~_in_sorted(self._bf_keys, cand)
            if new.any():
                rows = starts[fresh][new]
                self._insert_boundary_first(cand[new], grp_files[rows], off[rows])
        lasts = gend - 1
        self._set_carry(gkeys, off[lasts], end[lasts])

        seq = same & (off > prev_off)
        con = same & (off == prev_end)
        if same.any():
            self._parts["interval_pairs"].append(
                (grp_files[same], (off - prev_end)[same])
            )
        # per-file transition counts: keys are file-major, so file groups
        # are contiguous in the same sorted view
        fstarts = _group_starts(grp_files)
        self._parts["trans"].append((
            grp_files[fstarts],
            np.add.reduceat(same.astype(np.int64), fstarts),
            np.add.reduceat(seq.astype(np.int64), fstarts),
            np.add.reduceat(con.astype(np.int64), fstarts),
        ))

        if self.collect_spans:
            keep = end > off  # zero-size transfers touch no bytes
            if keep.any():
                nodes = tr["node"].astype(np.int64)[order][keep]
                rk = _pack_pair(grp_files[keep], nodes)
                s, e = off[keep], end[keep]
                self._parts["byte_runs"].append((rk, s, e))
                blk_s = (s // BLOCK_SIZE) * BLOCK_SIZE
                blk_e = -(-e // BLOCK_SIZE) * BLOCK_SIZE
                self._parts["block_runs"].append((rk, blk_s, blk_e))

    def _update_spans(self, opens: np.ndarray, closes: np.ndarray) -> None:
        for ev, key_field, part in (
            (opens, "node", "node_open"),
            (opens, "job", "job_open"),
            (closes, "node", "node_close"),
            (closes, "job", "job_close"),
        ):
            if len(ev) == 0:
                continue
            k = _pack_pair(
                ev["file"].astype(np.int64), ev[key_field].astype(np.int64)
            )
            self._parts[part].append((k, np.ascontiguousarray(ev["time"])))

    # -- seam state ----------------------------------------------------------

    def _set_carry(self, keys, off, end) -> None:
        """Overwrite the carried last request per group (new wins)."""
        if len(self._carry_keys):
            keep = ~_in_sorted(keys, self._carry_keys)
            keys = np.concatenate([self._carry_keys[keep], keys])
            off = np.concatenate([self._carry_off[keep], off])
            end = np.concatenate([self._carry_end[keep], end])
            order = np.argsort(keys, kind="stable")
            keys, off, end = keys[order], off[order], end[order]
        self._carry_keys, self._carry_off, self._carry_end = keys, off, end

    def _insert_boundary_first(self, keys, file_ids, off) -> None:
        """Record groups still awaiting a preceding request (first wins;
        callers pass only keys not yet present)."""
        keys = np.concatenate([self._bf_keys, keys])
        file_ids = np.concatenate([self._bf_file, file_ids])
        off = np.concatenate([self._bf_off, off])
        order = np.argsort(keys, kind="stable")
        self._bf_keys = keys[order]
        self._bf_file = file_ids[order]
        self._bf_off = off[order]

    # -- combining adjacent ranges -------------------------------------------

    def merge(self, other: "ChunkAccumulator") -> None:
        """Fold ``other`` (covering the chunks *after* ours) into self."""
        self.n_events += other.n_events
        self.n_opens += other.n_opens
        self.n_transfers += other.n_transfers
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        # resolve the transitions that straddle the seam: other's first
        # request of a group follows self's carried last request
        if len(other._bf_keys):
            found = _in_sorted(self._carry_keys, other._bf_keys)
            if found.any():
                pos = np.searchsorted(self._carry_keys, other._bf_keys[found])
                fid = other._bf_file[found]
                first_off = other._bf_off[found]
                last_off = self._carry_off[pos]
                last_end = self._carry_end[pos]
                ones = np.ones(len(fid), dtype=np.int64)
                self._parts["trans"].append((
                    fid,
                    ones,
                    (first_off > last_off).astype(np.int64),
                    (first_off == last_end).astype(np.int64),
                ))
                self._parts["interval_pairs"].append(
                    _dedupe_pairs(fid, first_off - last_end)
                )
            pending = ~found
            if pending.any():
                cand = other._bf_keys[pending]
                new = ~_in_sorted(self._bf_keys, cand)
                if new.any():
                    self._insert_boundary_first(
                        cand[new],
                        other._bf_file[pending][new],
                        other._bf_off[pending][new],
                    )
        if len(other._carry_keys):
            self._set_carry(
                other._carry_keys, other._carry_off, other._carry_end
            )
        for name, parts in other._parts.items():
            self._parts[name].extend(parts)


def _scan_chunks(
    source: TraceSource,
    lo: int,
    hi: int,
    collect_spans: bool = True,
    compact_runs: bool = True,
) -> ChunkAccumulator:
    t0 = time.perf_counter()
    acc = ChunkAccumulator(collect_spans=collect_spans)
    for i in range(lo, hi):
        acc.update(source.chunk(i))
    acc.compact(runs=compact_runs)
    if obs.enabled():
        obs.add("fused.chunks", hi - lo)
        obs.add("fused.events", acc.n_events)
        obs.hist("fused.scan_seconds", time.perf_counter() - t0)
    return acc


def _scan_parallel(
    source: TraceSource, workers: int | None, collect_spans: bool
) -> ChunkAccumulator:
    """Partition the chunks into contiguous ranges, scan them (in
    parallel when asked), and merge left to right — the deterministic
    merge order that keeps parallel output byte-identical to serial."""
    n_chunks = source.n_chunks
    n_ranges = max(1, min(n_chunks, workers or 1))
    bounds = np.linspace(0, n_chunks, n_ranges + 1).astype(int)
    names = [
        f"scan[{int(bounds[i])}:{int(bounds[i + 1])})" for i in range(n_ranges)
    ]
    tasks = {
        name: partial(_scan_chunks, lo=int(bounds[i]), hi=int(bounds[i + 1]),
                      collect_spans=collect_spans,
                      # with one range the result never crosses a process
                      # boundary, so the run union can wait for finalize
                      compact_runs=n_ranges > 1)
        for i, name in enumerate(names)
    }
    partials = map_tasks(tasks, source, workers, scheduler="steal")
    acc = partials[names[0]]
    if len(names) > 1:
        t0 = time.perf_counter()
        for name in names[1:]:
            acc.merge(partials[name])
        obs.hist("fused.merge_seconds", time.perf_counter() - t0)
    return acc


# -- windowed fallback for the cross-chunk analyzers -------------------------


def _file_windows(acc: ChunkAccumulator, window_events: int) -> list[tuple[int, int]]:
    """Contiguous [lo, hi] file-id ranges, each covering roughly
    ``window_events`` events, partitioning every file seen in the trace."""
    windows: list[tuple[int, int]] = []
    lo = None
    hi = None
    budget = 0
    files, counts = acc.part("events")
    for fid, count in zip(files.tolist(), counts.tolist()):
        if lo is not None and budget + count > window_events and budget > 0:
            windows.append((lo, hi))
            lo = None
            budget = 0
        if lo is None:
            lo = fid
        hi = fid
        budget += count
    if lo is not None:
        windows.append((lo, hi))
    return windows


def _window_task(source: TraceSource, lo: int, hi: int) -> dict:
    """Run the index-based sharing/interjob analyzers over one id window."""
    parts = []
    for chunk in source.iter_chunks():
        mask = (chunk["file"] >= lo) & (chunk["file"] <= hi)
        if mask.any():
            parts.append(chunk[mask])
    events = (
        np.concatenate(parts) if parts else np.empty(0, dtype=EVENT_DTYPE)
    )
    table = source.files.data
    in_window = (table["file"] >= lo) & (table["file"] <= hi)
    sub = TraceFrame(
        events,
        jobs=source.jobs,
        files=FileTable(table[in_window]),
        header=source.header,
    )
    out = {
        "candidates": 0,
        "rows": None,
        "interjob_shared": 0,
        "interjob_concurrent": 0,
    }
    if len(sub.opens):
        spans = sub.index.job_spans
        out["interjob_shared"] = len(spans.multi_window_files())
        out["interjob_concurrent"] = len(spans.concurrent_files())
        candidates = sub.index.node_spans.concurrent_files()
        out["candidates"] = len(candidates)
        if len(candidates):
            try:
                res = sharing_per_file(sub)
            except AnalysisError:
                pass  # candidates exist but none were accessed in this window
            else:
                out["rows"] = (res.file_ids, res.byte_shared,
                               res.block_shared, res.labels)
    # the sub-frame and its TraceIndex reference each other, so the
    # window's event arrays die with the *cyclic* collector — collect now
    # or serial runs hold every previous window's garbage at once
    del sub
    gc.collect()
    return out


# -- finalization ------------------------------------------------------------


def _finalize_basics(
    acc: ChunkAccumulator, jobs_table: JobTable, files_table: FileTable
) -> dict:
    jobs = jobs_table.data
    concurrency = concurrency_profile_from_jobs(jobs)
    node_counts = node_count_distribution_from_jobs(jobs)

    if acc.n_opens == 0:
        raise AnalysisError("no OPEN events in trace")
    open_pairs = acc.part("open_pairs")
    _jobs, per_job = np.unique(open_pairs >> np.int64(32), return_counts=True)
    files_per_job = files_per_job_from_counts(per_job.tolist())

    seen_files, _counts = acc.part("events")
    if len(seen_files) == 0:
        raise AnalysisError("no file events in trace")
    read_files = acc.part("read_files")
    written_files = acc.part("written_files")
    read_write = np.intersect1d(read_files, written_files, assume_unique=True)
    n_files = len(seen_files)
    read_only = len(read_files) - len(read_write)
    write_only = len(written_files) - len(read_write)
    untouched = n_files - read_only - write_only - len(read_write)

    table = files_table.data
    temp_ids = np.unique(
        table["file"][files_table.temporary].astype(np.int64)
    )
    open_files, open_counts = acc.part("opens")
    have = _in_sorted(open_files, temp_ids)
    temp_opens = int(
        open_counts[np.searchsorted(open_files, temp_ids[have])].sum()
    )
    population = FilePopulation(
        n_files=n_files,
        n_opens=acc.n_opens,
        read_only=read_only,
        write_only=write_only,
        read_write=len(read_write),
        untouched=untouched,
        temporary_files=len(temp_ids),
        temporary_open_fraction=temp_opens / acc.n_opens if acc.n_opens else 0.0,
        bytes_read_total=acc.bytes_read,
        bytes_written_total=acc.bytes_written,
    )
    if obs.enabled():
        obs.add("core.filestats.files", n_files)
        obs.add("core.filestats.opens", acc.n_opens)

    touched = np.union1d(read_files, written_files).astype(np.int64)
    size_cdf = size_cdf_from_table(table, touched)

    reads = _size_summary(acc, "read_sizes", "read")
    writes = _size_summary(acc, "write_sizes", "write")

    _files, fm_modes = acc.part("first_mode")
    first_modes, file_mode_counts = np.unique(fm_modes, return_counts=True)
    mode_keys, mode_opens = acc.part("mode_counts")
    modes = ModeUsage(
        files_per_mode={
            int(m): int(c)
            for m, c in zip(first_modes.tolist(), file_mode_counts.tolist())
        },
        opens_per_mode={
            int(m): int(c)
            for m, c in zip(mode_keys.tolist(), mode_opens.tolist())
        },
    )
    if obs.enabled():
        obs.add("core.modes.opens", acc.n_opens)
        obs.add("core.modes.files", int(file_mode_counts.sum()))
    return {
        "concurrency": concurrency,
        "node_counts": node_counts,
        "files_per_job": files_per_job,
        "files": population,
        "size_cdf": size_cdf,
        "reads": reads,
        "writes": writes,
        "modes": modes,
    }


def _size_summary(acc: ChunkAccumulator, part: str, kind_name: str):
    values, counts = acc.part(part)
    if obs.enabled() and len(values):
        obs.add(f"core.requests.{kind_name}s", int(counts.sum()))
    return summary_from_size_counts(kind_name, values, counts)


def _labels_for(acc: ChunkAccumulator, file_ids: np.ndarray) -> list[str]:
    r = _in_sorted(acc.part("read_files"), file_ids)
    w = _in_sorted(acc.part("written_files"), file_ids)
    return np.where(
        r & w, "rw", np.where(r, "ro", np.where(w, "wo", "untouched"))
    ).tolist()


def _finalize_regularity(acc: ChunkAccumulator):
    if acc.n_transfers == 0:
        return None, "sequentiality skipped: no transfers in trace"
    files, n_trans, n_seq, n_con = acc.part("trans")
    keep = n_trans > 0
    if not keep.any():
        return (
            None,
            "sequentiality skipped: no file has more than one request per node",
        )
    file_ids = files[keep]
    n_trans, n_seq, n_con = n_trans[keep], n_seq[keep], n_con[keep]
    labels = _labels_for(acc, file_ids)
    if obs.enabled():
        obs.add("core.sequentiality.files", len(file_ids))
        obs.add("core.sequentiality.transitions", int(n_trans.sum()))
    return (
        FileRegularity(
            file_ids=file_ids,
            n_transitions=n_trans,
            sequential_fraction=n_seq / n_trans,
            consecutive_fraction=n_con / n_trans,
            labels=labels,
        ),
        None,
    )


def _finalize_tables(acc: ChunkAccumulator) -> tuple[dict, dict]:
    seen, _counts = acc.part("events")
    if len(seen) == 0:
        raise AnalysisError("no file events in trace")

    def table_from(pair_files: np.ndarray) -> dict[str, int]:
        # every pair file is a seen file, so this bincount reproduces
        # bucket_counts(per-file distinct counts, cap=4) exactly
        per_file = np.bincount(
            np.searchsorted(seen, pair_files), minlength=len(seen)
        )
        binned = np.bincount(np.minimum(per_file, 4), minlength=5)
        table = {str(i): int(binned[i]) for i in range(4)}
        table["4+"] = int(binned[4])
        return table

    intervals = table_from(acc.part("interval_pairs")[0])
    request_sizes = table_from(acc.part("size_pairs")[0])
    if obs.enabled():
        obs.add("core.intervals.files", sum(intervals.values()))
        obs.add("core.intervals.request_size_files", sum(request_sizes.values()))
    return intervals, request_sizes


# -- fused sharing/interjob finalizers ---------------------------------------


def _span_stats(acc: ChunkAccumulator, open_part: str, close_part: str):
    """(# multi-window files, concurrent file ids) from fused span state.

    Reproduces :meth:`repro.trace.index.TraceIndex._span_table` exactly:
    rows are per-(file, key) windows [min open time, max close time],
    clamped below by the open time, in packed-key order; the concurrency
    sweep is the same lexsort + adjacent-overlap cummax.
    """
    open_keys, t0 = acc.part(open_part)
    close_keys, close_t1 = acc.part(close_part)
    t1 = t0.copy()
    if len(close_keys) and len(open_keys):
        pos = np.searchsorted(open_keys, close_keys)
        ok = pos < len(open_keys)
        ok &= open_keys[np.minimum(pos, len(open_keys) - 1)] == close_keys
        t1[pos[ok]] = close_t1[ok]
    t1 = np.maximum(t0, t1)
    file = open_keys >> np.int64(32)

    starts = _group_starts(file)
    widths = np.diff(np.append(starts, len(file)))
    multi = int((widths >= 2).sum())

    if len(file) < 2:
        return multi, np.empty(0, dtype=np.int64)
    order = np.lexsort((t1, t0, file))
    f = file[order]
    a0, a1 = t0[order], t1[order]
    same = f[1:] == f[:-1]
    hit = same & (a0[1:] <= a1[:-1])
    return multi, np.unique(f[1:][hit]).astype(np.int64)


def _candidate_runs(acc: ChunkAccumulator, name: str, candidates: np.ndarray):
    """Canonical interval union of one runs part, restricted to the
    candidate files (sorted ascending).  Operates on the raw per-chunk
    contributions so the union's lexsort only ever sees candidate rows —
    and stays byte-identical because the union is one-shot either way."""
    parts = acc._parts[name]
    if not parts:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy()
    k = _cat([p[0] for p in parts])
    s = _cat([p[1] for p in parts])
    e_ = _cat([p[2] for p in parts])
    mask = _in_sorted(candidates, k >> np.int64(32))
    return _union_runs(k[mask], s[mask], e_[mask])


def _finalize_sharing_fused(acc: ChunkAccumulator):
    if acc.n_opens == 0:
        return None, "sharing skipped: no OPEN events in trace", 0, 0
    interjob_shared, job_concurrent = _span_stats(acc, "job_open", "job_close")
    interjob_concurrent = len(job_concurrent)
    _multi, candidates = _span_stats(acc, "node_open", "node_close")
    if len(candidates) == 0:
        return (
            None,
            "sharing skipped: no concurrently multi-node-opened files in trace",
            interjob_shared,
            interjob_concurrent,
        )

    # union only the candidates' transfers: the full-trace union is the
    # scan's single most expensive sort, and non-candidate files never
    # contribute to the sharing table
    bk, bs, be = _candidate_runs(acc, "byte_runs", candidates)
    gk, gs, ge = _candidate_runs(acc, "block_runs", candidates)
    bfile = bk >> np.int64(32)
    gfile = gk >> np.int64(32)
    b_lo = np.searchsorted(bfile, candidates, side="left")
    b_hi = np.searchsorted(bfile, candidates, side="right")
    g_lo = np.searchsorted(gfile, candidates, side="left")
    g_hi = np.searchsorted(gfile, candidates, side="right")

    file_ids: list[int] = []
    byte_fracs: list[float] = []
    block_fracs: list[float] = []
    for fid, a, b, ga, gb in zip(
        candidates.tolist(), b_lo.tolist(), b_hi.tolist(),
        g_lo.tolist(), g_hi.tolist(),
    ):
        if b <= a:
            continue  # opened by many nodes but never accessed
        keys = bk[a:b]
        n_nodes = 1 + int((keys[1:] != keys[:-1]).sum())
        if n_nodes < 2:
            # concurrently opened by several nodes but accessed by one
            byte_fracs.append(0.0)
            block_fracs.append(0.0)
        else:
            nodes = (keys & _LOW) - _HALF
            byte_fracs.append(_overlap_fraction(bs[a:b], be[a:b], nodes))
            gkeys = gk[ga:gb]
            gnodes = (gkeys & _LOW) - _HALF
            block_fracs.append(_overlap_fraction(gs[ga:gb], ge[ga:gb], gnodes))
        file_ids.append(fid)

    if not file_ids:
        return (
            None,
            "sharing skipped: no accessed multi-node files in trace",
            interjob_shared,
            interjob_concurrent,
        )
    if obs.enabled():
        obs.add("core.sharing.candidate_files", len(candidates))
        obs.add("core.sharing.files", len(file_ids))
    sharing = SharingResult(
        file_ids=np.asarray(file_ids, dtype=np.int64),
        byte_shared=np.asarray(byte_fracs),
        block_shared=np.asarray(block_fracs),
        labels=_labels_for(acc, np.asarray(file_ids, dtype=np.int64)),
    )
    return sharing, None, interjob_shared, interjob_concurrent


def _finalize_sharing_windowed(acc: ChunkAccumulator, window_results: list[dict]):
    if acc.n_opens == 0:
        return None, "sharing skipped: no OPEN events in trace", 0, 0
    interjob_shared = sum(w["interjob_shared"] for w in window_results)
    interjob_concurrent = sum(w["interjob_concurrent"] for w in window_results)
    total_candidates = sum(w["candidates"] for w in window_results)
    if total_candidates == 0:
        return (
            None,
            "sharing skipped: no concurrently multi-node-opened files in trace",
            interjob_shared,
            interjob_concurrent,
        )
    rows = [w["rows"] for w in window_results if w["rows"] is not None]
    if not rows:
        return (
            None,
            "sharing skipped: no accessed multi-node files in trace",
            interjob_shared,
            interjob_concurrent,
        )
    sharing = SharingResult(
        file_ids=np.concatenate([r[0] for r in rows]),
        byte_shared=np.concatenate([r[1] for r in rows]),
        block_shared=np.concatenate([r[2] for r in rows]),
        labels=[label for r in rows for label in r[3]],
    )
    return sharing, None, interjob_shared, interjob_concurrent


# -- the entry points ---------------------------------------------------------


def finalize_fused(
    acc: ChunkAccumulator, jobs: JobTable, files: FileTable
) -> WorkloadReport:
    """The full §4 report from a fused accumulator plus the side tables.

    This is the fused engine's back half, split out so callers that fold
    chunks themselves — most prominently the trace-service daemon, which
    accumulates pushed chunks over HTTP — can finalize *without* a
    :class:`~repro.trace.store.TraceSource`.  The accumulator must have
    been built with ``collect_spans=True`` and cover the whole event
    stream in order; the result is byte-identical to
    ``characterize_streaming(source)`` over the same events.
    """
    with obs.span("core/characterize_fused/finalize"):
        with obs.span("core/characterize_fused/finalize/basics"):
            basics = _finalize_basics(acc, jobs, files)
        with obs.span("core/characterize_fused/finalize/regularity"):
            regularity, reg_note = _finalize_regularity(acc)
        with obs.span("core/characterize_fused/finalize/tables"):
            intervals, request_sizes = _finalize_tables(acc)
        with obs.span("core/characterize_fused/finalize/sharing"):
            sharing, sharing_note, ij_shared, ij_concurrent = (
                _finalize_sharing_fused(acc)
            )
    return _build_report(acc, basics, regularity, reg_note,
                         intervals, request_sizes, sharing, sharing_note,
                         ij_shared, ij_concurrent)


def _build_report(acc, basics, regularity, reg_note,
                  intervals, request_sizes, sharing, sharing_note,
                  interjob_shared, interjob_concurrent) -> WorkloadReport:
    if obs.enabled():
        obs.add("core.characterizations")
        obs.add("core.characterize.events", acc.n_events)
    notes = [n for n in (reg_note, sharing_note) if n is not None]
    return WorkloadReport(
        concurrency=basics["concurrency"],
        node_counts=basics["node_counts"],
        files_per_job=basics["files_per_job"],
        files=basics["files"],
        size_cdf=basics["size_cdf"],
        reads=basics["reads"],
        writes=basics["writes"],
        regularity=regularity,
        intervals=intervals,
        request_sizes=request_sizes,
        sharing=sharing,
        modes=basics["modes"],
        interjob_shared=interjob_shared,
        interjob_concurrent=interjob_concurrent,
        notes=notes,
    )


def characterize_streaming(
    source: TraceSource,
    workers: int | None = None,
    window_events: int | None = None,
    engine: str = "fused",
) -> WorkloadReport:
    """The full §4 characterization from a chunked source, out-of-core.

    Byte-identical to the index-backed ``characterize(source.frame(),
    engine="indexed")`` — enforced by ``tests/test_equivalence.py`` —
    while holding at most a few chunks of state in memory.

    ``engine`` selects how the cross-chunk sharing/interjob families are
    computed: ``"fused"`` (default) folds them into the single chunk
    walk, so every event is touched exactly once; ``"windowed"`` re-
    streams the chunks once more, running the index-based analyzers over
    bounded file-id windows (``window_events`` sets the per-window event
    budget, default four chunks' worth).
    """
    if engine not in STREAM_ENGINES:
        raise ValueError(
            f"unknown streaming engine {engine!r}; choose from {STREAM_ENGINES}"
        )
    if engine == "fused":
        with obs.span("core/characterize_fused"):
            with obs.span("core/characterize_fused/scan"):
                acc = _scan_parallel(source, workers, collect_spans=True)
            return finalize_fused(acc, source.jobs, source.files)

    if window_events is None:
        window_events = max(4 * source.chunk_size, 1)
    with obs.span("core/characterize_streaming"):
        with obs.span("core/characterize_streaming/scan"):
            acc = _scan_parallel(source, workers, collect_spans=False)

        basics = _finalize_basics(acc, source.jobs, source.files)
        regularity, reg_note = _finalize_regularity(acc)
        intervals, request_sizes = _finalize_tables(acc)

        with obs.span("core/characterize_streaming/windows"):
            windows = _file_windows(acc, window_events)
            window_tasks = {
                f"window/{i}": partial(_window_task, lo=lo, hi=hi)
                for i, (lo, hi) in enumerate(windows)
            }
            if windows:
                done = map_tasks(
                    window_tasks, source, workers, scheduler="steal"
                )
                window_results = [done[f"window/{i}"] for i in range(len(windows))]
            else:
                window_results = []
        sharing, sharing_note, ij_shared, ij_concurrent = (
            _finalize_sharing_windowed(acc, window_results)
        )
    return _build_report(acc, basics, regularity, reg_note,
                         intervals, request_sizes, sharing, sharing_note,
                         ij_shared, ij_concurrent)
