"""Fork-based fan-out over one shared in-memory object.

The characterization, the figure renderer, and the direct generator all
fan independent tasks out over a :class:`ProcessPoolExecutor` the same
way the cache sweeps do (:mod:`repro.caching.sweeps`): deterministic
per-task functions, results reassembled in task order, and a serial
fallback with identical output whenever the pool cannot help.

Unlike the sweeps (whose request stream is cheap to pickle), these tasks
share a multi-megabyte :class:`~repro.trace.frame.TraceFrame` or planned
workload.  The pool therefore uses the ``fork`` start method and parks
the shared state in a module global before forking, so children inherit
it copy-on-write and only task *names* cross the pipe.  On platforms
without ``fork`` the tasks simply run serially.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Mapping
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any

#: state inherited by forked workers: (task mapping, shared object)
_SHARED: tuple[Mapping[str, Callable[[Any], Any]], Any] | None = None


def fork_available() -> bool:
    """True when the platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers(n_tasks: int) -> int:
    """One worker per task, bounded by the CPU count."""
    return min(n_tasks, os.cpu_count() or 1)


def _call(name: str) -> tuple[str, Any]:
    assert _SHARED is not None, "worker forked without shared state"
    tasks, obj = _SHARED
    return name, tasks[name](obj)


def map_tasks(
    tasks: Mapping[str, Callable[[Any], Any]],
    obj: Any,
    workers: int | None,
) -> dict[str, Any]:
    """Run every ``tasks[name](obj)`` and return ``{name: result}``.

    With ``workers`` of ``None``/0/1, a single task, or no ``fork``
    support, the tasks run serially in-process.  Otherwise they fan out
    across a forked process pool; a pool that fails to start or loses a
    worker falls back to the serial path, which produces identical
    results because every task is deterministic.
    """
    names = list(tasks)
    if (
        workers is None
        or workers <= 1
        or len(names) <= 1
        or not fork_available()
    ):
        return {name: tasks[name](obj) for name in names}

    global _SHARED
    _SHARED = (tasks, obj)
    try:
        ctx = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(names)), mp_context=ctx
        ) as pool:
            futures = [pool.submit(_call, name) for name in names]
            return dict(f.result() for f in futures)
    except (BrokenExecutor, OSError):
        return {name: tasks[name](obj) for name in names}
    finally:
        _SHARED = None
