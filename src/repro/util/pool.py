"""Fork-based fan-out over one shared in-memory object.

The characterization, the figure renderer, and the direct generator all
fan independent tasks out over a :class:`ProcessPoolExecutor` the same
way the cache sweeps do (:mod:`repro.caching.sweeps`): deterministic
per-task functions, results reassembled in task order, and a serial
fallback with identical output whenever the pool cannot help.

These tasks share a multi-megabyte :class:`~repro.trace.frame.TraceFrame`
or chunked source, which must never be pickled per task.  The pool
therefore uses the ``fork`` start method and parks the shared state in a
module global before forking, so children inherit it copy-on-write and
only task *names* cross the pipe; the global is dropped as soon as the
pool drains so it cannot pin the arrays afterwards.  On platforms
without ``fork`` the pool falls back to ``spawn`` workers attached to
the same data through :mod:`repro.util.shm` shared-memory segments —
still zero-copy for the array payload — and runs serially only when
both are unavailable.

Failure and observability semantics: a task exception in a worker is
re-raised in the parent as :class:`~repro.errors.PoolTaskError` naming
the task and its submission index (chaining the original exception),
rather than surfacing as a bare remote traceback.  When the
:mod:`repro.obs` layer is enabled, each worker collects its own span
and counter deltas and ships them back with its result, so a parallel
run's report matches a serial run's; the pool also records its own
fan-out counters (``pool.*``).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from collections.abc import Callable, Mapping
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from pickle import PicklingError
from typing import Any

from repro import obs
from repro.errors import PoolTaskError
from repro.obs.context import TraceContext

log = logging.getLogger("repro.util.pool")

#: state inherited by forked workers: (task mapping, shared object)
_SHARED: tuple[Mapping[str, Callable[[Any], Any]], Any] | None = None

#: trace handoff wire inherited by forked workers (spawn gets it as an
#: initializer argument); None whenever the parent run is not traced
_TRACE_WIRE: dict | None = None


def _make_wire() -> dict | None:
    """One fan-out's trace handoff (and worker sampling period), if traced."""
    observer = obs.current()
    tracelog = observer.tracelog
    if tracelog is None:
        return None
    batch = tracelog.new_span_id()
    wire = tracelog.context.handoff(tracelog.current_span(), batch)
    sampler = observer.sampler
    if sampler is not None:
        wire["sample_period"] = sampler.period_s
    return wire


def _adopt_wire(
    wire: dict, name: str, worker: str | None = None,
    victim: int | None = None,
):
    """Install a fresh traced observer for one worker task and record
    its ``task_start`` (preceded by a ``steal`` event when the task was
    taken from another worker's queue); returns (observer, edge key)."""
    context = TraceContext.adopt(wire, worker=worker or f"pid{os.getpid()}")
    observer = obs.enable(context)
    key = f"{wire['batch']}/{name}"
    if victim is not None:
        observer.tracelog.record("steal", name, key=key, victim=victim)
    observer.tracelog.record("task_start", name, key=key)
    period = wire.get("sample_period")
    if period:
        from repro.obs.sampler import Sampler

        observer.sampler = Sampler(observer, period_s=period).start()
    return observer, key


def fork_available() -> bool:
    """True when the platform can fork worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers(n_tasks: int) -> int:
    """One worker per task, bounded by the CPU count."""
    return min(n_tasks, os.cpu_count() or 1)


def _call(name: str) -> tuple[str, Any, dict | None, float]:
    assert _SHARED is not None, "worker forked without shared state"
    tasks, obj = _SHARED
    if obs.enabled():
        # start a fresh observer so only this task's deltas travel back
        wire = _TRACE_WIRE
        if wire is not None:
            observer, key = _adopt_wire(wire, name)
        else:
            observer, key = obs.enable(), None
        t0 = time.perf_counter()
        result = tasks[name](obj)
        dur = time.perf_counter() - t0
        if key is not None:
            observer.tracelog.record("task_end", name, key=key,
                                     dur_s=round(dur, 6))
        return name, result, observer.snapshot(), dur
    return name, tasks[name](obj), None, 0.0


def _record_task(name: str, duration_s: float) -> None:
    """Fold one task's duration into the pool's own observations."""
    obs.hist("pool.task_seconds", duration_s)
    observer = obs.current()
    if duration_s > observer.gauges.get("pool.slowest_task_s", -1.0):
        observer.gauge("pool.slowest_task_s", duration_s)
        observer.note("pool.slowest_task", name)


def _spawn_init(tasks, spec, obs_on: bool, wire: dict | None = None) -> None:
    """Initializer for spawn workers: attach to the exported shared
    object once per worker, then serve tasks exactly like a forked one."""
    global _SHARED, _TRACE_WIRE
    from repro.util import shm

    _TRACE_WIRE = wire
    if obs_on:
        obs.enable()
    _SHARED = (tasks, shm.attach_shareable(spec))


def _run_serial(
    tasks: Mapping[str, Callable[[Any], Any]], obj: Any, names: list[str]
) -> dict[str, Any]:
    if not obs.enabled():
        return {name: tasks[name](obj) for name in names}
    results: dict[str, Any] = {}
    for index, name in enumerate(names):
        obs.event("pool_dispatch", name, index=index, mode="serial")
        t0 = time.perf_counter()
        results[name] = tasks[name](obj)
        _record_task(name, time.perf_counter() - t0)
    return results


def _run_pool(
    names: list[str], n_workers: int, mode: str,
    wire: dict | None = None, **executor_kwargs
) -> dict[str, Any]:
    """Submit every task to a fresh pool and gather results in
    submission order, folding worker observations back in."""
    tracelog = obs.current().tracelog
    ctx = multiprocessing.get_context(mode)
    with ProcessPoolExecutor(
        max_workers=n_workers, mp_context=ctx, **executor_kwargs
    ) as pool:
        futures = []
        for index, name in enumerate(names):
            if obs.enabled():
                obs.event("pool_dispatch", name, index=index, mode=mode)
                if tracelog is not None and wire is not None:
                    tracelog.record(
                        "dispatch", name, key=f"{wire['batch']}/{name}",
                        index=index, mode=mode,
                    )
            futures.append(pool.submit(_call, name))
        results: dict[str, Any] = {}
        snapshots: dict[str, dict] = {}
        durations: dict[str, float] = {}
        for index, (name, future) in enumerate(zip(names, futures)):
            try:
                rname, value, snapshot, dur = future.result()
            except (BrokenExecutor, OSError):
                raise
            except Exception as exc:
                raise PoolTaskError(
                    f"pool task {name!r} (#{index} of {len(names)}) "
                    f"failed in a worker: {exc}",
                    task=name,
                    index=index,
                ) from exc
            results[rname] = value
            if snapshot is not None:
                snapshots[rname] = snapshot
                durations[rname] = dur
    obs.add(f"pool.{mode}ed_batches")
    obs.add("pool.worker_processes", n_workers)
    # fold worker observations in submission order (deterministic)
    for name in names:
        snapshot = snapshots.get(name)
        if snapshot is not None:
            obs.current().merge_snapshot(snapshot)
            _record_task(name, durations[name])
            if tracelog is not None and wire is not None:
                tracelog.record("merge", name, key=f"{wire['batch']}/{name}")
    return results


def map_tasks(
    tasks: Mapping[str, Callable[[Any], Any]],
    obj: Any,
    workers: int | None,
    scheduler: str = "static",
    straggler_timeout: float | None = None,
) -> dict[str, Any]:
    """Run every ``tasks[name](obj)`` and return ``{name: result}``.

    With ``workers`` of ``None``/0/1 or a single task, the tasks run
    serially in-process.  Otherwise they fan out across a forked process
    pool (``obj`` inherited copy-on-write), or — without ``fork`` — a
    spawned pool whose workers attach to ``obj`` through shared memory
    (:mod:`repro.util.shm`).  A pool that fails to start or loses a
    worker falls back to the serial path, which produces identical
    results because every task is deterministic.  A task that *raises*
    in a worker surfaces as :class:`~repro.errors.PoolTaskError` with
    the task name and submission index, the worker exception chained.

    ``scheduler`` selects the fan-out discipline: ``"static"`` submits
    every task to an executor up front; ``"steal"`` routes through the
    work-stealing scheduler (:mod:`repro.util.sched`) so idle workers
    take over a straggling worker's queued tasks — same results, folded
    in the same order.  ``straggler_timeout`` (steal only) additionally
    re-dispatches the oldest in-flight task after that many seconds
    without progress.
    """
    names = list(tasks)
    obs.add("pool.batches")
    obs.add("pool.tasks", len(names))
    if workers is None or workers <= 1 or len(names) <= 1:
        obs.add("pool.serial_batches")
        if workers is not None and workers > 1:
            log.info(
                "running %d task(s) serially: a single task cannot fan out",
                len(names),
            )
        return _run_serial(tasks, obj, names)
    n_workers = min(workers, len(names))

    if scheduler == "steal" and fork_available():
        from repro.util import sched

        return sched.run_stealing(
            tasks, obj, n_workers, straggler_timeout=straggler_timeout
        )
    if scheduler not in ("static", "steal"):
        raise ValueError(
            f"unknown scheduler {scheduler!r} (use 'static' or 'steal')"
        )

    wire = _make_wire()
    if fork_available():
        global _SHARED, _TRACE_WIRE
        _SHARED = (tasks, obj)
        _TRACE_WIRE = wire
        try:
            return _run_pool(names, n_workers, "fork", wire=wire)
        except (BrokenExecutor, OSError) as exc:
            obs.add("pool.serial_fallbacks")
            log.warning(
                "forked pool of %d workers broke (%s: %s); "
                "rerunning all %d tasks serially",
                n_workers, type(exc).__name__, exc, len(names),
            )
            return _run_serial(tasks, obj, names)
        finally:
            _SHARED = None
            _TRACE_WIRE = None

    from repro.util import shm

    spec, cleanup = shm.export_shareable(obj)
    try:
        return _run_pool(
            names,
            n_workers,
            "spawn",
            wire=wire,
            initializer=_spawn_init,
            initargs=(dict(tasks), spec, obs.enabled(), wire),
        )
    except (BrokenExecutor, OSError, PicklingError) as exc:
        obs.add("pool.serial_fallbacks")
        log.warning(
            "spawned pool of %d workers failed (%s: %s); "
            "rerunning all %d tasks serially",
            n_workers, type(exc).__name__, exc, len(names),
        )
        return _run_serial(tasks, obj, names)
    finally:
        cleanup()
