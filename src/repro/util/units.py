"""Byte-size units and helpers.

The iPSC/860's Concurrent File System striped files in 4 KB blocks and the
CHARISMA instrumentation buffered trace records in 4 KB messages, so the
4096-byte block size shows up throughout the library as :data:`BLOCK_SIZE`.
"""

from __future__ import annotations

import re

#: One kilobyte (binary), in bytes.
KB: int = 1024
#: One megabyte (binary), in bytes.
MB: int = 1024 * KB
#: One gigabyte (binary), in bytes.
GB: int = 1024 * MB

#: The CFS striping unit and iPSC message fragment size (4 KB).
BLOCK_SIZE: int = 4 * KB

_SUFFIXES: dict[str, int] = {
    "": 1,
    "b": 1,
    "k": KB,
    "kb": KB,
    "kib": KB,
    "m": MB,
    "mb": MB,
    "mib": MB,
    "g": GB,
    "gb": GB,
    "gib": GB,
}

_PARSE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: str | int | float) -> int:
    """Parse a human-readable byte size such as ``"25KB"`` or ``"1.5 MB"``.

    Integers and floats pass through (floats are rounded).  Suffixes are
    case-insensitive and binary (``1 KB == 1024``).

    >>> parse_bytes("4kb")
    4096
    >>> parse_bytes(512)
    512
    """
    if isinstance(text, bool):
        raise TypeError("byte size must not be a bool")
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"byte size must be non-negative, got {text!r}")
        return int(round(text))
    match = _PARSE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable byte size: {text!r}")
    value, suffix = match.groups()
    try:
        scale = _SUFFIXES[suffix.lower()]
    except KeyError:
        raise ValueError(f"unknown byte-size suffix in {text!r}") from None
    return int(round(float(value) * scale))


def format_bytes(n: int | float) -> str:
    """Render a byte count compactly, e.g. ``format_bytes(4096) == "4.0KB"``.

    Negative counts keep their sign; sub-kilobyte counts render as ``"123B"``.
    """
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for unit, scale in (("GB", GB), ("MB", MB), ("KB", KB)):
        if n >= scale:
            return f"{sign}{n / scale:.1f}{unit}"
    return f"{sign}{n:.0f}B"


def blocks_spanned(offset: int, size: int, block_size: int = BLOCK_SIZE) -> range:
    """Return the range of block indices touched by ``[offset, offset+size)``.

    A zero-size request touches no blocks.

    >>> list(blocks_spanned(4095, 2))
    [0, 1]
    """
    if offset < 0 or size < 0:
        raise ValueError("offset and size must be non-negative")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if size == 0:
        return range(0)
    first = offset // block_size
    last = (offset + size - 1) // block_size
    return range(first, last + 1)


def align_down(offset: int, block_size: int = BLOCK_SIZE) -> int:
    """Round ``offset`` down to a block boundary."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return (offset // block_size) * block_size


def align_up(offset: int, block_size: int = BLOCK_SIZE) -> int:
    """Round ``offset`` up to a block boundary."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    return -(-offset // block_size) * block_size
