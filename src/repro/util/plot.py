"""Terminal plotting: ASCII renderings of the paper's figures.

The benchmarks and the CLI reproduce figures as data series; this module
draws them in a terminal so a reproduction run can be *seen* without a
plotting stack.  Two primitives cover every figure in the paper:

- :func:`ascii_chart` — line/step chart of one or more (x, y) series
  (Figures 3-9);
- :func:`ascii_bars` — labelled horizontal bars (Figures 1-2).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError

#: characters used to draw successive series in a chart
SERIES_MARKS = "*o+x#@"


def ascii_bars(
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart with one row per label.

    >>> print(ascii_bars(["a", "b"], [1.0, 0.5], width=4))  # doctest: +SKIP
    a | #### 1
    b | ##   0.5
    """
    if len(labels) != len(values):
        raise ReproError("labels and values must be parallel")
    if not labels:
        raise ReproError("nothing to plot")
    if width < 1:
        raise ReproError("width must be positive")
    peak = max(values)
    scale = width / peak if peak > 0 else 0.0
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value * scale))
        lines.append(f"{str(label).rjust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def ascii_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> str:
    """Plot one or more (x, y) series on a character grid.

    Each series is drawn with its own mark; a legend maps marks to
    series names.  With ``logx`` the x axis is log-scaled (request and
    file sizes span five decades, exactly like the paper's figures).
    """
    if not series:
        raise ReproError("nothing to plot")
    if width < 8 or height < 4:
        raise ReproError("plot area too small")

    def tx(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if logx:
            if (x <= 0).any():
                raise ReproError("log x axis requires positive x values")
            return np.log10(x)
        return x

    all_x = np.concatenate([tx(x) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in series.values()])
    x0, x1 = float(all_x.min()), float(all_x.max())
    y0, y1 = float(all_y.min()), float(all_y.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), mark in zip(series.items(), SERIES_MARKS):
        txs = tx(xs)
        tys = np.asarray(ys, dtype=np.float64)
        cols = np.clip(((txs - x0) / (x1 - x0) * (width - 1)).round(), 0, width - 1)
        rows = np.clip(((tys - y0) / (y1 - y0) * (height - 1)).round(), 0, height - 1)
        # connect consecutive points column-by-column so curves read as lines
        for i in range(len(cols) - 1):
            c_a, c_b = int(cols[i]), int(cols[i + 1])
            r_a, r_b = int(rows[i]), int(rows[i + 1])
            span = max(abs(c_b - c_a), 1)
            for step in range(span + 1):
                c = c_a + (c_b - c_a) * step // span
                r = r_a + (r_b - r_a) * step // span
                grid[height - 1 - r][c] = mark
        if len(cols) == 1:
            grid[height - 1 - int(rows[0])][int(cols[0])] = mark

    lines = []
    y_hi = f"{y1:g}"
    y_lo = f"{y0:g}"
    margin = max(len(y_hi), len(y_lo))
    for i, row in enumerate(grid):
        prefix = y_hi if i == 0 else (y_lo if i == height - 1 else "")
        lines.append(f"{prefix.rjust(margin)} |{''.join(row)}")
    x_lo = f"{10**x0:g}" if logx else f"{x0:g}"
    x_hi = f"{10**x1:g}" if logx else f"{x1:g}"
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    footer = f"{x_lo}{' ' * max(width - len(x_lo) - len(x_hi), 1)}{x_hi}"
    lines.append(" " * (margin + 2) + footer)
    if x_label or y_label:
        lines.append(" " * (margin + 2) + f"x: {x_label}{'  y: ' + y_label if y_label else ''}")
    legend = "   ".join(
        f"{mark} {name}" for (name, _), mark in zip(series.items(), SERIES_MARKS)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)


def cdf_chart(
    cdfs: dict[str, "object"],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    x_label: str = "",
) -> str:
    """Convenience: chart :class:`~repro.util.cdf.EmpiricalCDF` objects."""
    series = {}
    for name, cdf in cdfs.items():
        xs, ys = cdf.steps()
        if logx:
            keep = xs > 0
            xs, ys = xs[keep], ys[keep]
        series[name] = (xs, ys)
    return ascii_chart(series, width=width, height=height, logx=logx,
                       x_label=x_label, y_label="CDF")
