"""Shared numeric and formatting utilities used across the library.

Nothing in this package is specific to the CHARISMA study; it provides the
general building blocks (unit constants, seeded random-number streams,
empirical CDFs, histograms and ASCII tables) that the trace, workload,
characterization and caching layers are built on.
"""

from repro.util.cdf import EmpiricalCDF
from repro.util.histogram import LogHistogram, distinct_count
from repro.util.rng import SeedSequencePool, make_rng
from repro.util.tables import format_table
from repro.util.units import (
    BLOCK_SIZE,
    GB,
    KB,
    MB,
    format_bytes,
    parse_bytes,
)

__all__ = [
    "BLOCK_SIZE",
    "EmpiricalCDF",
    "GB",
    "KB",
    "LogHistogram",
    "MB",
    "SeedSequencePool",
    "distinct_count",
    "format_bytes",
    "format_table",
    "make_rng",
    "parse_bytes",
]
