"""Work-stealing task scheduler over the shared-object worker pool.

:func:`repro.util.pool.map_tasks` fans tasks out *statically*: every
task is submitted up front and an executor hands them to whichever
worker asks next.  That is fine when tasks are uniform, but sweep lines
and shard replays are not — one FIFO replay line can run 10x longer
than an LRU stack-distance line, and a static split leaves workers idle
behind the straggler.  This module adds the dynamic half of the
ROADMAP's "distributed sweep scheduler":

- **Chunked task queues.**  The task list is split into per-worker
  contiguous chunks living in one shared index array; each worker pops
  from the *head* of its own chunk, so the common case is lock-cheap
  and preserves the submission-order locality of the static split.
- **Stealing from the tail.**  A worker whose chunk drains picks the
  victim with the most work left and takes one task from the victim's
  *tail* — the classic deque discipline: owner and thief touch opposite
  ends, so contention stays rare.
- **Straggler re-dispatch.**  When no result has arrived for
  ``straggler_timeout`` seconds and idle capacity exists, the oldest
  in-flight task is re-enqueued on the overflow queue.  Tasks are
  deterministic functions, so whichever copy finishes first wins and
  the duplicate result is dropped.
- **Crash requeue.**  A worker that dies mid-queue (OOM-killed,
  segfaulted C extension, ``os._exit`` in a task) has its unfinished
  chunk and in-flight task re-enqueued for the survivors; if every
  worker is gone the parent finishes the remainder serially.  A task
  that repeatedly kills its executor is eventually run in the parent so
  a genuine crash still surfaces instead of looping.

Determinism: results and worker obs snapshots are reassembled in task
submission order regardless of which worker ran what or how often, so a
stolen, re-dispatched, or requeued run is byte-identical to a serial
one.  Scheduling activity is observable through the ``pool.steal`` /
``pool.requeue`` / ``pool.straggler_redispatch`` counters.

The scheduler requires the ``fork`` start method (workers inherit the
task mapping and shared object copy-on-write).  On spawn-only platforms
:func:`repro.util.pool.map_tasks` keeps using the static executor path,
which shares data through :mod:`repro.util.shm` instead.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_mod
import time
from collections.abc import Callable, Mapping
from typing import Any

from repro import obs
from repro.errors import PoolTaskError

log = logging.getLogger("repro.util.sched")

#: how long a worker sleeps when it finds no runnable task anywhere
_IDLE_SLEEP_S = 0.002

#: how long the parent waits on the result queue per poll
_POLL_S = 0.02

#: how long to wait for a (possibly dead) victim's queue lock
_LOCK_TIMEOUT_S = 0.2

#: how many times a task may be requeued after killing its worker
#: before the parent runs it in-process and lets the failure surface
_MAX_REQUEUES = 2


def _pop_own(worker: int, bounds, locks, idx_arr) -> int | None:
    """Take the next task index from a worker's own chunk head."""
    lock = locks[worker]
    if not lock.acquire(timeout=_LOCK_TIMEOUT_S):  # pragma: no cover - contention
        return None
    try:
        head, tail = bounds[2 * worker], bounds[2 * worker + 1]
        if head >= tail:
            return None
        bounds[2 * worker] = head + 1
        return idx_arr[head]
    finally:
        lock.release()


def _steal(
    worker: int, n_workers: int, bounds, locks, idx_arr
) -> tuple[int, int] | None:
    """Take one task from the tail of the fullest other queue.

    Returns ``(task index, victim worker)`` so the thief can attribute
    the steal in its trace stream and flight events.
    """
    victims = sorted(
        (v for v in range(n_workers) if v != worker),
        key=lambda v: bounds[2 * v + 1] - bounds[2 * v],
        reverse=True,
    )
    for victim in victims:
        if bounds[2 * victim + 1] - bounds[2 * victim] <= 0:
            break  # sorted: nobody further has work either
        lock = locks[victim]
        if not lock.acquire(timeout=_LOCK_TIMEOUT_S):
            continue  # victim (or its lock holder) is wedged; try another
        try:
            head, tail = bounds[2 * victim], bounds[2 * victim + 1]
            if head >= tail:
                continue
            bounds[2 * victim + 1] = tail - 1
            return idx_arr[tail - 1], victim
        finally:
            lock.release()
    return None


def _run_one(names, tasks, obj, idx: int, obs_on: bool,
             wire: dict | None = None, worker: int | None = None,
             victim: int | None = None, fresh: bool = True):
    """Execute one task, capturing its obs deltas like the static pool.

    ``fresh=False`` is the *parent-side* mode (requeue cap exceeded, all
    workers dead): the task runs under the parent's live observer instead
    of replacing it with a fresh one, and returns ``snapshot=None`` so
    nothing is double-merged.
    """
    name = names[idx]
    if obs_on:
        from repro.util import pool as pool_mod

        if not fresh:
            t0 = time.perf_counter()
            try:
                value = tasks[name](obj)
            except Exception as exc:
                return idx, None, None, 0.0, exc
            dur = time.perf_counter() - t0
            pool_mod._record_task(name, dur)
            return idx, value, None, dur, None
        if wire is not None:
            observer, key = pool_mod._adopt_wire(
                wire, name,
                worker=f"w{worker}" if worker is not None else None,
                victim=victim,
            )
        else:
            observer, key = obs.enable(), None
        t0 = time.perf_counter()
        try:
            value = tasks[name](obj)
        except Exception as exc:
            return idx, None, None, 0.0, exc
        dur = time.perf_counter() - t0
        if key is not None:
            observer.tracelog.record("task_end", name, key=key,
                                     dur_s=round(dur, 6))
        return idx, value, observer.snapshot(), dur, None
    try:
        value = tasks[name](obj)
    except Exception as exc:
        return idx, None, None, 0.0, exc
    return idx, value, None, 0.0, None


def _steal_worker(
    worker: int,
    n_workers: int,
    idx_arr,
    bounds,
    locks,
    current,
    extra,
    results,
    done,
    obs_on: bool,
    wire: dict | None = None,
) -> None:
    """Worker main loop: drain own chunk, then steal, then poll overflow."""
    from repro.util import pool as pool_mod

    assert pool_mod._SHARED is not None, "steal worker forked without state"
    tasks, obj = pool_mod._SHARED
    names = list(tasks)
    while not done.is_set():
        idx = _pop_own(worker, bounds, locks, idx_arr)
        victim: int | None = None
        if idx is None:
            stolen = _steal(worker, n_workers, bounds, locks, idx_arr)
            if stolen is not None:
                idx, victim = stolen
        if idx is None:
            try:
                idx = extra.get_nowait()
            except queue_mod.Empty:
                time.sleep(_IDLE_SLEEP_S)
                continue
        current[worker] = idx
        idx, value, snapshot, dur, exc = _run_one(
            names, tasks, obj, idx, obs_on,
            wire=wire, worker=worker, victim=victim,
        )
        current[worker] = -1
        if exc is not None:
            import pickle

            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(repr(exc))
        results.put((worker, victim, idx, value, snapshot, dur, exc))


def run_stealing(
    tasks: Mapping[str, Callable[[Any], Any]],
    obj: Any,
    workers: int,
    straggler_timeout: float | None = None,
) -> dict[str, Any]:
    """Run ``tasks[name](obj)`` for every task over a work-stealing pool.

    Same contract as :func:`repro.util.pool.map_tasks`: returns
    ``{name: result}`` with results (and worker obs snapshots) folded in
    submission order, raises :class:`~repro.errors.PoolTaskError` naming
    a task that raised, and falls back to the serial path when the
    platform cannot fork.  ``straggler_timeout`` enables re-dispatching
    the oldest in-flight task after that many seconds without progress.
    """
    from repro.util import pool as pool_mod

    names = list(tasks)
    n = len(names)
    n_workers = min(workers, n)
    if n_workers <= 1 or not pool_mod.fork_available():
        reason = (
            "single worker/task" if n_workers <= 1 else "fork unavailable"
        )
        log.info("steal scheduler falling back to static pool (%s)", reason)
        return pool_mod.map_tasks(tasks, obj, workers)

    ctx = multiprocessing.get_context("fork")
    idx_arr = ctx.Array("q", n, lock=False)
    bounds = ctx.Array("q", 2 * n_workers, lock=False)
    locks = [ctx.Lock() for _ in range(n_workers)]
    current = ctx.Array("q", n_workers, lock=False)
    extra = ctx.Queue()
    results_q = ctx.Queue()
    done = ctx.Event()

    # contiguous chunked split, same order the static pool would submit
    for i in range(n):
        idx_arr[i] = i
    for w in range(n_workers):
        bounds[2 * w] = w * n // n_workers
        bounds[2 * w + 1] = (w + 1) * n // n_workers
        current[w] = -1

    obs_on = obs.enabled()
    wire = pool_mod._make_wire()
    tracelog = obs.current().tracelog
    if tracelog is not None and wire is not None:
        for i, name in enumerate(names):
            owner = next(
                w for w in range(n_workers)
                if bounds[2 * w] <= i < bounds[2 * w + 1]
            )
            tracelog.record(
                "dispatch", name, key=f"{wire['batch']}/{name}",
                index=i, mode="steal", worker=owner,
            )
    pool_mod._SHARED = (tasks, obj)
    procs = [
        ctx.Process(
            target=_steal_worker,
            args=(w, n_workers, idx_arr, bounds, locks, current, extra,
                  results_q, done, obs_on, wire),
            daemon=True,
        )
        for w in range(n_workers)
    ]
    try:
        for p in procs:
            p.start()
        outcome = _collect(
            names, tasks, obj, n_workers, procs, idx_arr, bounds, locks,
            current, extra, results_q, straggler_timeout, obs_on, wire,
        )
    finally:
        done.set()
        for p in procs:
            p.join(timeout=2.0)
        for p in procs:
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()
                p.join(timeout=1.0)
        extra.cancel_join_thread()
        results_q.cancel_join_thread()
        pool_mod._SHARED = None

    values, snapshots, durations, steals, requeues = outcome
    obs.add("pool.steal_batches")
    obs.add("pool.worker_processes", n_workers)
    if steals:
        obs.add("pool.steal", steals)
    if requeues:
        obs.add("pool.requeue", requeues)
    # fold worker observations in submission order (deterministic)
    for idx, name in enumerate(names):
        snapshot = snapshots.get(idx)
        if snapshot is not None:
            obs.current().merge_snapshot(snapshot)
            pool_mod._record_task(name, durations[idx])
            if tracelog is not None and wire is not None:
                tracelog.record("merge", name, key=f"{wire['batch']}/{name}")
    return {name: values[idx] for idx, name in enumerate(names)}


def _drain_dead_worker(worker, bounds, locks, idx_arr, current) -> list[int]:
    """Recover every task index a dead worker still owned."""
    recovered: list[int] = []
    in_flight = current[worker]
    if in_flight >= 0:
        recovered.append(in_flight)
        current[worker] = -1
    lock = locks[worker]
    locked = lock.acquire(timeout=_LOCK_TIMEOUT_S)
    try:
        # if the worker died holding its own lock, reading without it is
        # safe: the owner is gone and thieves give up after a timeout
        head, tail = bounds[2 * worker], bounds[2 * worker + 1]
        recovered.extend(idx_arr[head:tail])
        bounds[2 * worker] = tail
    finally:
        if locked:
            lock.release()
    return recovered


def _collect(
    names, tasks, obj, n_workers, procs, idx_arr, bounds, locks, current,
    extra, results_q, straggler_timeout, obs_on, wire=None,
):
    """Parent loop: gather results, police crashes and stragglers."""
    n = len(names)
    values: dict[int, Any] = {}
    snapshots: dict[int, dict] = {}
    durations: dict[int, float] = {}
    requeue_counts: dict[int, int] = {}
    steals = requeues = 0
    last_progress = time.monotonic()
    dead: set[int] = set()
    tracelog = obs.current().tracelog

    def _requeue(idx: int, why: str, worker: int | None = None) -> None:
        nonlocal requeues
        requeue_counts[idx] = requeue_counts.get(idx, 0) + 1
        requeues += 1
        if obs_on:
            obs.event("pool_requeue", names[idx], index=idx, reason=why,
                      worker=worker)
            if tracelog is not None and wire is not None:
                tracelog.record(
                    "requeue", names[idx],
                    key=f"{wire['batch']}/{names[idx]}",
                    reason=why, worker=worker,
                )
        if requeue_counts[idx] > _MAX_REQUEUES:
            log.warning(
                "task %r requeued %d times; running it in the parent",
                names[idx], requeue_counts[idx] - 1,
            )
            _, value, snapshot, dur, exc = _run_one(
                names, tasks, obj, idx, obs_on, fresh=False
            )
            if exc is not None:
                raise PoolTaskError(
                    f"pool task {names[idx]!r} (#{idx} of {n}) failed after "
                    f"{why}: {exc}",
                    task=names[idx],
                    index=idx,
                ) from exc
            values[idx] = value
            if snapshot is not None:
                snapshots[idx] = snapshot
                durations[idx] = dur
        else:
            log.info("requeueing task %r after %s", names[idx], why)
            extra.put(idx)

    while len(values) < n:
        try:
            worker, victim, idx, value, snapshot, dur, exc = results_q.get(
                timeout=_POLL_S
            )
        except queue_mod.Empty:
            pass
        else:
            last_progress = time.monotonic()
            if exc is not None:
                raise PoolTaskError(
                    f"pool task {names[idx]!r} (#{idx} of {n}) failed in a "
                    f"worker: {exc}",
                    task=names[idx],
                    index=idx,
                ) from exc
            if idx not in values:  # first finisher wins on duplicates
                values[idx] = value
                if snapshot is not None:
                    snapshots[idx] = snapshot
                    durations[idx] = dur
                if victim is not None:
                    steals += 1
                    if obs_on:
                        obs.event(
                            "pool_steal", names[idx], index=idx,
                            worker=worker, victim=victim,
                        )
            continue

        # no result this poll: check for dead workers ...
        newly_dead = False
        recovered: set[int] = set()
        for w, p in enumerate(procs):
            if w in dead or p.is_alive():
                continue
            dead.add(w)
            newly_dead = True
            log.warning(
                "pool worker %d died (exit code %s); requeueing its tasks",
                w, p.exitcode,
            )
            for idx in _drain_dead_worker(w, bounds, locks, idx_arr, current):
                if idx not in values:
                    recovered.add(idx)
                    _requeue(idx, f"worker {w} crash", worker=w)
        if newly_dead and len(dead) < len(procs):
            # a hard-killed worker (os._exit, SIGKILL) takes its queue
            # feeder thread with it, so results it finished but never
            # flushed are gone for good.  Any missing index that no live
            # worker owns must be presumed lost and re-dispatched;
            # duplicates are dropped by first-result-wins above.
            owned: set[int] = set(recovered)
            for w in range(n_workers):
                if w in dead:
                    continue
                if current[w] >= 0:
                    owned.add(current[w])
                owned.update(idx_arr[bounds[2 * w]:bounds[2 * w + 1]])
            for idx in range(n):
                if idx not in values and idx not in owned:
                    _requeue(idx, "result lost in a worker crash")
        if len(dead) == len(procs):
            # nobody left to serve the queues: finish serially, in order
            log.warning("all pool workers died; finishing serially in parent")
            for idx in range(n):
                if idx in values:
                    continue
                _, value, snapshot, dur, exc = _run_one(
                    names, tasks, obj, idx, obs_on, fresh=False
                )
                if exc is not None:
                    raise PoolTaskError(
                        f"pool task {names[idx]!r} (#{idx} of {n}) failed "
                        f"in the parent after its workers died: {exc}",
                        task=names[idx],
                        index=idx,
                    ) from exc
                values[idx] = value
                if snapshot is not None:
                    snapshots[idx] = snapshot
                    durations[idx] = dur
            break

        # ... and for stragglers worth re-dispatching
        if (
            straggler_timeout is not None
            and time.monotonic() - last_progress > straggler_timeout
        ):
            in_flight = [
                current[w] for w in range(n_workers)
                if w not in dead and current[w] >= 0
            ]
            idle = any(
                w not in dead and current[w] < 0 for w in range(n_workers)
            )
            candidates = [i for i in in_flight if i not in values]
            if candidates and idle:
                idx = min(candidates)  # deterministic pick: oldest index
                owner = next(
                    (w for w in range(n_workers)
                     if w not in dead and current[w] == idx),
                    None,
                )
                obs.add("pool.straggler_redispatch")
                if obs_on:
                    obs.event(
                        "pool_straggler_redispatch", names[idx],
                        index=idx, worker=owner,
                    )
                    if tracelog is not None and wire is not None:
                        tracelog.record(
                            "redispatch", names[idx],
                            key=f"{wire['batch']}/{names[idx]}",
                            worker=owner,
                        )
                _requeue(idx, "straggler timeout", worker=owner)
                last_progress = time.monotonic()

    return values, snapshots, durations, steals, requeues
