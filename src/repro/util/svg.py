"""Hand-rolled SVG charts — publication output with no plotting stack.

Two chart kinds cover the paper's nine figures, mirroring
:mod:`repro.util.plot`'s ASCII versions: step/line charts for the CDFs
and curves, bar charts for the categorical job figures.  Output is
plain, valid SVG 1.1; every element is generated here so the library
stays dependency-free.
"""

from __future__ import annotations

from collections.abc import Sequence
from xml.sax.saxutils import escape

import numpy as np

from repro.errors import ReproError

#: stroke colors for successive series
SERIES_COLORS = ("#1f4e79", "#c0504d", "#4f8f4f", "#8064a2", "#d88a2d", "#4bacc6")

_FONT = 'font-family="Helvetica, Arial, sans-serif"'


def _header(width: int, height: int) -> list[str]:
    return [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def svg_chart(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
    width: int = 640,
    height: int = 400,
) -> str:
    """Line chart of one or more (x, y) series as an SVG document string."""
    if not series:
        raise ReproError("nothing to plot")
    margin_l, margin_r, margin_t, margin_b = 64, 16, 40, 56
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    if plot_w <= 0 or plot_h <= 0:
        raise ReproError("plot area too small")

    def tx(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if logx:
            if (x <= 0).any():
                raise ReproError("log x axis requires positive x values")
            return np.log10(x)
        return x

    all_x = np.concatenate([tx(x) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=np.float64) for _, y in series.values()])
    x0, x1 = float(all_x.min()), float(all_x.max())
    y0, y1 = float(min(all_y.min(), 0.0)), float(all_y.max())
    if x1 == x0:
        x1 = x0 + 1.0
    if y1 == y0:
        y1 = y0 + 1.0

    def px(x: float) -> float:
        return margin_l + (x - x0) / (x1 - x0) * plot_w

    def py(y: float) -> float:
        return margin_t + plot_h - (y - y0) / (y1 - y0) * plot_h

    parts = _header(width, height)
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="22" text-anchor="middle" '
            f'{_FONT} font-size="14">{escape(title)}</text>'
        )
    # axes
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#444" stroke-width="1"/>'
    )
    # x ticks (4) and y ticks (4)
    for i in range(5):
        xv = x0 + (x1 - x0) * i / 4
        label = f"{10 ** xv:.3g}" if logx else f"{xv:.3g}"
        xp = px(xv)
        parts.append(
            f'<line x1="{xp:.1f}" y1="{margin_t + plot_h}" x2="{xp:.1f}" '
            f'y2="{margin_t + plot_h + 5}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{xp:.1f}" y="{margin_t + plot_h + 18}" '
            f'text-anchor="middle" {_FONT} font-size="11">{escape(label)}</text>'
        )
        yv = y0 + (y1 - y0) * i / 4
        yp = py(yv)
        parts.append(
            f'<line x1="{margin_l - 5}" y1="{yp:.1f}" x2="{margin_l}" '
            f'y2="{yp:.1f}" stroke="#444"/>'
        )
        parts.append(
            f'<text x="{margin_l - 8}" y="{yp + 4:.1f}" text-anchor="end" '
            f'{_FONT} font-size="11">{yv:.3g}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 12}" '
            f'text-anchor="middle" {_FONT} font-size="12">{escape(x_label)}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="16" y="{margin_t + plot_h / 2:.0f}" {_FONT} font-size="12" '
            f'text-anchor="middle" transform="rotate(-90 16 '
            f'{margin_t + plot_h / 2:.0f})">{escape(y_label)}</text>'
        )
    # series
    for (name, (xs, ys)), color in zip(series.items(), SERIES_COLORS):
        txs = tx(xs)
        tys = np.asarray(ys, dtype=np.float64)
        points = " ".join(f"{px(float(a)):.1f},{py(float(b)):.1f}" for a, b in zip(txs, tys))
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"/>'
        )
    # legend
    ly = margin_t + 8
    for (name, _), color in zip(series.items(), SERIES_COLORS):
        parts.append(
            f'<line x1="{margin_l + 10}" y1="{ly}" x2="{margin_l + 34}" '
            f'y2="{ly}" stroke="{color}" stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{margin_l + 40}" y="{ly + 4}" {_FONT} '
            f'font-size="11">{escape(name)}</text>'
        )
        ly += 16
    parts.append("</svg>")
    return "\n".join(parts)


def svg_bars(
    labels: Sequence[object],
    groups: dict[str, Sequence[float]],
    title: str = "",
    width: int = 640,
    height: int = 400,
) -> str:
    """Grouped vertical bar chart (Figures 1-2)."""
    if not groups or not labels:
        raise ReproError("nothing to plot")
    for name, values in groups.items():
        if len(values) != len(labels):
            raise ReproError(f"group {name!r} length disagrees with labels")
    margin_l, margin_r, margin_t, margin_b = 56, 16, 40, 48
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    peak = max(max(v) for v in groups.values())
    peak = peak if peak > 0 else 1.0

    parts = _header(width, height)
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="22" text-anchor="middle" '
            f'{_FONT} font-size="14">{escape(title)}</text>'
        )
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{margin_l + plot_w}" y2="{margin_t + plot_h}" stroke="#444"/>'
    )
    slot = plot_w / len(labels)
    bar_w = slot * 0.8 / len(groups)
    for i, label in enumerate(labels):
        for g, (name, values) in enumerate(groups.items()):
            h = float(values[i]) / peak * plot_h
            x = margin_l + i * slot + slot * 0.1 + g * bar_w
            y = margin_t + plot_h - h
            color = SERIES_COLORS[g % len(SERIES_COLORS)]
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}"/>'
            )
        parts.append(
            f'<text x="{margin_l + i * slot + slot / 2:.1f}" '
            f'y="{margin_t + plot_h + 16}" text-anchor="middle" {_FONT} '
            f'font-size="11">{escape(str(label))}</text>'
        )
    ly = margin_t + 8
    for g, name in enumerate(groups):
        color = SERIES_COLORS[g % len(SERIES_COLORS)]
        parts.append(
            f'<rect x="{margin_l + 10}" y="{ly - 8}" width="12" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{margin_l + 28}" y="{ly}" {_FONT} '
            f'font-size="11">{escape(name)}</text>'
        )
        ly += 16
    parts.append("</svg>")
    return "\n".join(parts)
