"""Zero-copy export of analysis inputs over POSIX shared memory.

The fork-based pool in :mod:`repro.util.pool` shares its input with
workers for free through copy-on-write.  On spawn-only platforms the
same sharing is recovered here: :func:`export_shareable` packs the heavy
arrays behind a known object (a frame, a chunked source, a request
stream) into one :class:`multiprocessing.shared_memory.SharedMemory`
segment and returns a small picklable *spec*; workers rebuild the object
with :func:`attach_shareable`, mapping the very same pages instead of
unpickling a private copy.

Specs round-trip these shapes:

- ``TraceFrame`` — events + job/file side tables packed into one
  segment, the (tiny) header pickled inside the spec;
- ``FrameSource`` — the wrapped frame's spec plus the chunk size;
- ``TraceStore`` — just the path: the store is already an mmap'd file,
  so workers reopen it and share the page cache;
- tuples of plain numpy arrays (the cache-replay request stream);
- anything else — pickled verbatim inside the spec (the fallback keeps
  :func:`repro.util.pool.map_tasks` correct for arbitrary objects).

The exporting process owns the segment: :func:`export_shareable` returns
a cleanup callable that closes *and unlinks* it, to be invoked once the
pool has drained.  Workers attach read-only and keep the handle alive
for the rest of their life; see :func:`_attach_arrays` for how that
interacts with the shared ``resource_tracker``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np


@dataclass
class ShmBundle:
    """A named bag of 1-d arrays plus small picklable metadata.

    The generic carrier for pool jobs whose shared state is "several
    heavy arrays and a bit of structure" (the sharded replay's action
    table, per-shard index lists, ...).  Under fork it rides along
    copy-on-write like any object; under spawn :func:`export_shareable`
    packs the arrays into one segment and pickles only ``meta``.
    """

    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    meta: Any = None

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

#: alignment of each packed array inside a segment
_ALIGN = 64

#: attached handles kept alive for the worker process lifetime — the
#: rebuilt numpy arrays borrow the segment's buffer, so dropping the
#: handle would invalidate them mid-task
_ATTACHED: list[Any] = []


def _noop() -> None:
    return None


def _pack_arrays(arrays: list[np.ndarray]):
    """Copy arrays back to back into one fresh segment; returns the
    segment and one metadata dict per array."""
    offsets: list[int] = []
    total = 0
    for a in arrays:
        total = -(-total // _ALIGN) * _ALIGN
        offsets.append(total)
        total += a.nbytes
    seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
    metas = []
    for a, off in zip(arrays, offsets):
        a = np.ascontiguousarray(a)
        if a.nbytes:
            dst = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf, offset=off)
            dst[...] = a
        metas.append({"offset": off, "n": len(a), "dtype": a.dtype})
    return seg, metas


def _attach_arrays(name: str, metas: list[dict]) -> list[np.ndarray]:
    seg = shared_memory.SharedMemory(name=name)
    # Attaching re-registers the segment with the resource tracker on
    # Python < 3.13.  Pool workers share the exporter's tracker process,
    # so the re-register is an idempotent no-op there and the exporter's
    # unlink() balances it — workers must NOT unregister, or the shared
    # tracker would drop the entry while siblings still map the pages.
    _ATTACHED.append(seg)
    out = []
    for m in metas:
        arr = np.ndarray((m["n"],), dtype=m["dtype"], buffer=seg.buf,
                         offset=m["offset"])
        arr.flags.writeable = False
        out.append(arr)
    return out


def export_shareable(obj: Any) -> tuple[dict, Callable[[], None]]:
    """A picklable spec for ``obj`` plus a cleanup callable.

    Heavy known objects go through shared memory (see module docstring);
    everything else is pickled inside the spec itself.  The caller must
    invoke the cleanup exactly once, after every worker has finished.
    """
    from repro.trace.store import FrameSource, TraceStore
    from repro.trace.frame import TraceFrame

    if isinstance(obj, TraceStore):
        return {"kind": "store", "path": str(obj.path)}, _noop
    if isinstance(obj, FrameSource):
        spec, cleanup = export_shareable(obj.frame())
        if spec["kind"] == "frame":
            return (
                {"kind": "frame_source", "frame": spec,
                 "chunk_size": obj.chunk_size},
                cleanup,
            )
        return {"kind": "pickle", "obj": obj}, _noop  # pragma: no cover
    if isinstance(obj, TraceFrame):
        seg, metas = _pack_arrays([obj.events, obj.jobs.data, obj.files.data])
        spec = {
            "kind": "frame",
            "name": seg.name,
            "arrays": metas,
            "header": obj.header,
        }

        def cleanup(seg=seg) -> None:
            seg.close()
            seg.unlink()

        return spec, cleanup
    if isinstance(obj, ShmBundle):
        keys = list(obj.arrays)
        seg, metas = _pack_arrays(
            [np.ascontiguousarray(obj.arrays[k]).ravel() for k in keys]
        )
        spec = {
            "kind": "bundle",
            "name": seg.name,
            "keys": keys,
            "arrays": metas,
            "meta": obj.meta,
        }

        def cleanup(seg=seg) -> None:
            seg.close()
            seg.unlink()

        return spec, cleanup
    if (
        isinstance(obj, tuple)
        and len(obj) > 0
        and all(isinstance(a, np.ndarray) and a.ndim == 1 for a in obj)
    ):
        seg, metas = _pack_arrays(list(obj))
        spec = {"kind": "arrays", "name": seg.name, "arrays": metas}

        def cleanup(seg=seg) -> None:
            seg.close()
            seg.unlink()

        return spec, cleanup
    return {"kind": "pickle", "obj": obj}, _noop


def attach_shareable(spec: dict) -> Any:
    """Rebuild the object described by an :func:`export_shareable` spec,
    borrowing the exporter's pages for the array payload."""
    kind = spec["kind"]
    if kind == "pickle":
        return spec["obj"]
    if kind == "store":
        from repro.trace.store import TraceStore

        store = TraceStore(spec["path"])
        _ATTACHED.append(store)
        return store
    if kind == "frame_source":
        from repro.trace.store import FrameSource

        return FrameSource(
            attach_shareable(spec["frame"]), chunk_size=spec["chunk_size"]
        )
    if kind == "frame":
        from repro.trace.frame import FileTable, JobTable, TraceFrame

        events, jobs, files = _attach_arrays(spec["name"], spec["arrays"])
        return TraceFrame(
            events,
            jobs=JobTable(jobs),
            files=FileTable(files),
            header=spec["header"],
        )
    if kind == "arrays":
        return tuple(_attach_arrays(spec["name"], spec["arrays"]))
    if kind == "bundle":
        arrays = _attach_arrays(spec["name"], spec["arrays"])
        return ShmBundle(
            arrays=dict(zip(spec["keys"], arrays)), meta=spec["meta"]
        )
    raise ValueError(f"unknown shareable spec kind {kind!r}")
