"""Plain-text table rendering for reports and benchmark output.

Every benchmark prints the same rows the paper's tables and figure
captions report; this keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.3g}",
) -> str:
    """Render an ASCII table with right-aligned numeric columns.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    Raises if any row's length disagrees with the header.
    """
    ncols = len(headers)
    rendered: list[list[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != ncols:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {ncols}"
            )
        cells = []
        for cell in row:
            if isinstance(cell, bool):
                cells.append(str(cell))
            elif isinstance(cell, float):
                cells.append(float_fmt.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)

    widths = [max(len(r[i]) for r in rendered) for i in range(ncols)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(rendered[0]))
    lines.append(header_line)
    lines.append(sep)
    for cells in rendered[1:]:
        lines.append(
            " | ".join(
                cells[i].rjust(widths[i]) if _numeric(cells[i]) else cells[i].ljust(widths[i])
                for i in range(ncols)
            )
        )
    return "\n".join(lines)


def _numeric(text: str) -> bool:
    try:
        float(text.rstrip("%"))
        return True
    except ValueError:
        return False


def format_percent(fraction: float, digits: int = 1) -> str:
    """Render ``0.961`` as ``"96.1%"``."""
    return f"{100.0 * fraction:.{digits}f}%"
