"""Deterministic random-number streams.

Every stochastic component in the library (job arrivals, application
models, clock drift, disk service noise) draws from an independent
substream derived from a single root seed, so a whole simulated tracing
campaign is reproducible from one integer and components can be reordered
or parallelized without perturbing each other's draws.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.SeedSequence | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields a nondeterministic generator; everything in the
    library defaults to seed 0 so results are stable run-to-run.
    """
    return np.random.default_rng(seed)


class SeedSequencePool:
    """Hand out independent, named random substreams from one root seed.

    Streams are keyed by an arbitrary string; asking for the same key twice
    returns generators with identical state, so components may be created
    in any order::

        pool = SeedSequencePool(42)
        a = pool.rng("arrivals")
        b = pool.rng("clock-drift/node-7")

    The key is hashed into the seed entropy, making streams for distinct
    keys statistically independent.
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)) or isinstance(root_seed, bool):
            raise TypeError(f"root seed must be an int, got {root_seed!r}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The root seed this pool was constructed from."""
        return self._root_seed

    def seed_sequence(self, key: str) -> np.random.SeedSequence:
        """Return the :class:`~numpy.random.SeedSequence` for ``key``."""
        if not isinstance(key, str):
            raise TypeError(f"stream key must be a str, got {key!r}")
        # Stable across processes: derive entropy from the key bytes rather
        # than Python's salted hash().
        digest = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
        entropy = [self._root_seed, *map(int, digest)]
        return np.random.SeedSequence(entropy)

    def rng(self, key: str) -> np.random.Generator:
        """Return a fresh generator for the named substream."""
        return np.random.default_rng(self.seed_sequence(key))

    def spawn(self, key: str) -> "SeedSequencePool":
        """Return a child pool rooted under ``key``.

        Useful for giving a subsystem (e.g. one job) its own namespace of
        streams without threading long key prefixes through its code.
        """
        child_entropy = self.seed_sequence(key).generate_state(1)[0]
        return SeedSequencePool(int(child_entropy))
