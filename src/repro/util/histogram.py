"""Histograms and distinct-value counting.

Tables 2 and 3 of the paper bucket files by *how many distinct* interval
sizes / request sizes they were accessed with; Figures 1 and 2 are plain
categorical histograms.  This module supplies both shapes plus a
logarithmically-binned histogram used for request-size summaries.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

import numpy as np


def distinct_count(values: Iterable[float]) -> int:
    """Number of distinct values in ``values`` (0 for an empty iterable)."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.size == 0:
        return 0
    return int(np.unique(arr).size)


def bucket_counts(
    counts: Iterable[int],
    cap: int = 4,
) -> dict[str, int]:
    """Bucket integer counts into ``{"0": n0, "1": n1, ..., f"{cap}+": rest}``.

    This is exactly the row structure of Tables 2 and 3: files are grouped
    by how many distinct interval (or request) sizes they exhibited, with
    everything at or above ``cap`` pooled into one terminal bucket.
    """
    if cap < 1:
        raise ValueError("cap must be >= 1")
    buckets: dict[str, int] = {str(i): 0 for i in range(cap)}
    buckets[f"{cap}+"] = 0
    for c in counts:
        if c < 0:
            raise ValueError(f"counts must be non-negative, got {c}")
        if c >= cap:
            buckets[f"{cap}+"] += 1
        else:
            buckets[str(int(c))] += 1
    return buckets


class LogHistogram:
    """Histogram with logarithmically-spaced bins, for byte-size data.

    Bins are powers of ``base`` starting at ``lo``; values below ``lo``
    fall into an underflow bin and values at or above the top edge into an
    overflow bin.  Supports weighted accumulation so the same structure
    serves both "number of requests of this size" and "bytes moved by
    requests of this size".
    """

    def __init__(self, lo: float = 1.0, hi: float = 2**30, base: float = 2.0) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if base <= 1:
            raise ValueError("base must exceed 1")
        n_edges = int(np.ceil(np.log(hi / lo) / np.log(base))) + 1
        self.edges = lo * base ** np.arange(n_edges)
        self.counts = np.zeros(n_edges + 1, dtype=np.float64)  # +under/overflow

    def add(self, values: Iterable[float], weights: Iterable[float] | None = None) -> None:
        """Accumulate samples (optionally weighted) into the bins."""
        vals = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
        if weights is None:
            w = np.ones_like(vals)
        else:
            w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64)
            if w.shape != vals.shape:
                raise ValueError("weights must match values in shape")
        idx = np.searchsorted(self.edges, vals, side="right")
        np.add.at(self.counts, idx, w)

    @property
    def total(self) -> float:
        """Total accumulated weight."""
        return float(self.counts.sum())

    def bins(self) -> list[tuple[float, float, float]]:
        """Return (lo_edge, hi_edge, weight) triples for the interior bins."""
        out = []
        for i in range(len(self.edges) - 1):
            out.append((float(self.edges[i]), float(self.edges[i + 1]), float(self.counts[i + 1])))
        return out

    def mode_bin(self) -> tuple[float, float]:
        """Edges of the heaviest interior bin."""
        interior = self.counts[1:-1]
        if interior.sum() == 0:
            raise ValueError("histogram is empty")
        i = int(np.argmax(interior))
        return float(self.edges[i]), float(self.edges[i + 1])


def categorical_histogram(values: Iterable[int]) -> dict[int, int]:
    """Exact counts per distinct integer value, sorted by value.

    Used for Figure 1 (number of concurrent jobs) and Figure 2 (number of
    compute nodes per job, always a power of two on the iPSC).
    """
    counter = Counter(int(v) for v in values)
    return dict(sorted(counter.items()))
