"""Empirical cumulative distribution functions.

Most of the paper's figures are CDFs — of file sizes (Figure 3), request
sizes by count and by bytes moved (Figure 4), per-file sequentiality
(Figures 5–6), sharing fractions (Figure 7), and per-job cache hit rates
(Figure 8).  :class:`EmpiricalCDF` is the single representation all those
analyses return, supporting optional weights (for the byte-weighted curve
of Figure 4) and tabulation at chosen thresholds for the benchmark output.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class EmpiricalCDF:
    """A weighted empirical CDF over real-valued samples.

    ``CDF(x)`` is the fraction of total weight carried by samples with
    value ``<= x`` — matching the paper's convention ("for a file size x,
    CDF(x) represents the fraction of all files that had x or fewer
    bytes").
    """

    def __init__(
        self,
        samples: Iterable[float],
        weights: Iterable[float] | None = None,
    ) -> None:
        values = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("samples must be one-dimensional")
        if weights is None:
            w = np.ones_like(values)
        else:
            w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=np.float64)
            if w.shape != values.shape:
                raise ValueError(
                    f"weights shape {w.shape} does not match samples shape {values.shape}"
                )
            if np.any(w < 0):
                raise ValueError("weights must be non-negative")
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._cum = np.cumsum(w[order])
        self._total = float(self._cum[-1]) if len(self._cum) else 0.0

    # -- basic properties -------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    @property
    def n(self) -> int:
        """Number of samples."""
        return len(self._values)

    @property
    def total_weight(self) -> float:
        """Sum of all weights (sample count when unweighted)."""
        return self._total

    @property
    def values(self) -> np.ndarray:
        """Sorted sample values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def min(self) -> float:
        """Smallest sample value."""
        self._require_nonempty()
        return float(self._values[0])

    @property
    def max(self) -> float:
        """Largest sample value."""
        self._require_nonempty()
        return float(self._values[-1])

    def _require_nonempty(self) -> None:
        if len(self._values) == 0:
            raise ValueError("empty CDF")

    # -- evaluation --------------------------------------------------------

    def at(self, x: float) -> float:
        """Fraction of weight at values ``<= x``."""
        self._require_nonempty()
        idx = int(np.searchsorted(self._values, x, side="right"))
        if idx == 0:
            return 0.0
        if self._total == 0.0:
            return 0.0
        return float(self._cum[idx - 1] / self._total)

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        if np.isscalar(x):
            return self.at(float(x))
        xs = np.asarray(x, dtype=np.float64)
        return np.array([self.at(float(v)) for v in xs])

    def below(self, x: float) -> float:
        """Fraction of weight at values strictly ``< x``."""
        self._require_nonempty()
        idx = int(np.searchsorted(self._values, x, side="left"))
        if idx == 0 or self._total == 0.0:
            return 0.0
        return float(self._cum[idx - 1] / self._total)

    def quantile(self, q: float) -> float:
        """Smallest value ``v`` such that ``CDF(v) >= q`` (0 <= q <= 1)."""
        self._require_nonempty()
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._total == 0.0:
            return float(self._values[0])
        target = q * self._total
        idx = int(np.searchsorted(self._cum, target, side="left"))
        idx = min(idx, len(self._values) - 1)
        return float(self._values[idx])

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    def mean(self) -> float:
        """Weighted mean of the samples."""
        self._require_nonempty()
        if self._total == 0.0:
            return float(np.mean(self._values))
        w = np.diff(self._cum, prepend=0.0)
        return float(np.sum(self._values * w) / self._total)

    # -- fractions at notable points (for figure "spikes") ------------------

    def fraction_equal(self, x: float) -> float:
        """Fraction of weight exactly at value ``x`` (spike height)."""
        self._require_nonempty()
        return self.at(x) - self.below(x)

    def tabulate(self, thresholds: Sequence[float]) -> list[tuple[float, float]]:
        """Evaluate the CDF at each threshold; returns (x, CDF(x)) pairs."""
        return [(float(t), self.at(float(t))) for t in thresholds]

    # -- plotting-style export ----------------------------------------------

    def steps(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (x, y) arrays tracing the CDF step function.

        Suitable for ``matplotlib.step(x, y, where="post")`` or for
        serializing the curve into a benchmark report.
        """
        self._require_nonempty()
        xs, last_idx = np.unique(self._values, return_index=True)
        # last cumulative weight at each distinct value
        ends = np.append(last_idx[1:], len(self._values)) - 1
        if self._total == 0.0:
            ys = np.zeros_like(xs)
        else:
            ys = self._cum[ends] / self._total
        return xs, ys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if len(self) == 0:
            return "EmpiricalCDF(empty)"
        return (
            f"EmpiricalCDF(n={self.n}, min={self.min:g}, "
            f"median={self.median:g}, max={self.max:g})"
        )
