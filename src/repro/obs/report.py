"""Structured run reports: serialization and the pretty-printer.

A :class:`RunReport` is the frozen output of one observed run — the
span tree, counter totals, gauges, histograms, optional time series,
string notes, and process-level totals (wall, CPU, peak RSS).  It
round-trips through JSON (``python -m repro --obs=PATH`` writes one;
``python -m repro obsreport PATH`` reads it back) and renders as an
indented profile for terminals.

Schema history:

- **v1** (PR 3): spans, counters, gauges, process totals.
- **v2**: adds ``histograms`` (mergeable log-bucketed distributions,
  :mod:`repro.obs.hist`), ``timeseries`` (flushed sampler ring,
  :mod:`repro.obs.sampler`), and ``notes`` (string annotations such as
  the slowest pool task).
- **v3**: adds ``trace`` (the cross-process causal event tree,
  :mod:`repro.obs.context` — one stream per process, nested worker
  streams under ``children``) and ``timeseries["workers"]`` (flushed
  worker sampler rings).  v1/v2 files load with those fields empty;
  files from a *future* version raise
  :class:`~repro.errors.ObsReportError` instead of being misread.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObsReportError
from repro.obs.collector import SpanNode
from repro.obs.hist import Histogram

#: current on-disk format version
REPORT_VERSION = 3


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GB"  # pragma: no cover - unreachable


@dataclass
class RunReport:
    """One run's observations, serializable and renderable."""

    command: list[str] = field(default_factory=list)
    started_at: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    peak_rss_bytes: int = 0
    #: :meth:`repro.obs.collector.SpanNode.to_dict` of the root span
    spans: dict = field(default_factory=lambda: SpanNode("run").to_dict())
    counters: dict[str, int | float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: name -> :meth:`repro.obs.hist.Histogram.to_dict`
    histograms: dict[str, dict] = field(default_factory=dict)
    #: flushed :meth:`repro.obs.sampler.Sampler.flush` payload ({} if unsampled)
    timeseries: dict = field(default_factory=dict)
    #: string annotations (e.g. ``pool.slowest_task``)
    notes: dict[str, str] = field(default_factory=dict)
    #: cross-process causal event tree (:meth:`repro.obs.context.TraceLog.payload`)
    trace: dict = field(default_factory=dict)
    version: int = REPORT_VERSION

    # -- derived --------------------------------------------------------------

    @property
    def span_tree(self) -> SpanNode:
        """The span tree rebuilt as :class:`SpanNode` objects."""
        return SpanNode.from_dict(self.spans)

    @property
    def n_spans(self) -> int:
        """Distinct span nodes recorded (root excluded)."""
        return self.span_tree.n_nodes()

    @property
    def n_counters(self) -> int:
        """Distinct counters recorded."""
        return len(self.counters)

    @property
    def n_histograms(self) -> int:
        """Distinct histogram families recorded."""
        return len(self.histograms)

    def histogram(self, name: str) -> Histogram:
        """The named histogram rebuilt as a :class:`Histogram`."""
        return Histogram.from_dict(self.histograms[name])

    def trace_streams(self) -> list[dict]:
        """Every per-process trace stream, flattened (root first)."""
        streams: list[dict] = []

        def walk(stream: dict) -> None:
            streams.append(stream)
            for child in stream.get("children", ()):
                walk(child)

        if self.trace:
            walk(self.trace)
        return streams

    def span_names(self) -> list[str]:
        """Every distinct span path, ``/``-joined from the root."""
        names: list[str] = []

        def walk(node: SpanNode, prefix: str) -> None:
            for child in node.children.values():
                path = f"{prefix}{child.name}" if not prefix else f"{prefix} > {child.name}"
                names.append(child.name)
                walk(child, path)

        walk(self.span_tree, "")
        return names

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "command": list(self.command),
            "started_at": self.started_at,
            "started_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(self.started_at)
            ),
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "peak_rss_bytes": self.peak_rss_bytes,
            "spans": self.spans,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "timeseries": dict(self.timeseries),
            "notes": dict(self.notes),
            "trace": dict(self.trace),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunReport":
        """Rebuild a report; v1 payloads load with the v2 fields empty.

        Raises :class:`~repro.errors.ObsReportError` for payloads that
        are not report-shaped or were written by a future version.
        """
        if not isinstance(payload, dict):
            raise ObsReportError(
                f"run report must be a JSON object, got {type(payload).__name__}"
            )
        version = int(payload.get("version", REPORT_VERSION))
        if version > REPORT_VERSION:
            raise ObsReportError(
                f"run report has schema version {version}, but this build "
                f"reads at most version {REPORT_VERSION} — upgrade to read it"
            )
        try:
            return cls(
                command=[str(c) for c in payload.get("command", [])],
                started_at=float(payload.get("started_at", 0.0)),
                wall_s=float(payload.get("wall_s", 0.0)),
                cpu_s=float(payload.get("cpu_s", 0.0)),
                peak_rss_bytes=int(payload.get("peak_rss_bytes", 0)),
                spans=dict(payload.get("spans", SpanNode("run").to_dict())),
                counters=dict(payload.get("counters", {})),
                gauges=dict(payload.get("gauges", {})),
                histograms=dict(payload.get("histograms", {})),
                timeseries=dict(payload.get("timeseries", {})),
                notes=dict(payload.get("notes", {})),
                trace=dict(payload.get("trace", {})),
                version=version,
            )
        except (TypeError, ValueError) as exc:
            raise ObsReportError(f"run report is malformed: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObsReportError(
                f"not a run report (truncated or invalid JSON: {exc})"
            ) from exc
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        """Load a report; failures raise a one-line ObsReportError."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ObsReportError(
                f"cannot read run report {path}: {exc.strerror or exc}"
            ) from exc
        try:
            return cls.from_json(text)
        except ObsReportError as exc:
            raise ObsReportError(f"{path}: {exc}") from exc

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """Indented span profile plus counter/gauge tables."""
        lines = []
        cmd = " ".join(self.command) if self.command else "(unknown command)"
        lines.append(f"obs run report — {cmd}")
        started = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(self.started_at)
        )
        lines.append(
            f"started {started}  wall {_fmt_seconds(self.wall_s)}  "
            f"cpu {_fmt_seconds(self.cpu_s)}  "
            f"peak RSS {_fmt_bytes(self.peak_rss_bytes)}"
        )
        tree = self.span_tree
        lines.append(f"spans ({tree.n_nodes()} distinct, {tree.n_entries()} entered):")

        def walk(node: SpanNode, depth: int) -> None:
            for child in node.children.values():
                label = "  " * depth + child.name
                lines.append(
                    f"  {label:<44} ×{child.count:<6} "
                    f"wall {_fmt_seconds(child.wall_s):>9}  "
                    f"cpu {_fmt_seconds(child.cpu_s):>9}"
                )
                walk(child, depth + 1)

        walk(tree, 0)
        lines.append(f"counters ({len(self.counters)}):")
        for name in sorted(self.counters):
            value = self.counters[name]
            shown = f"{value:.3f}" if isinstance(value, float) else f"{value}"
            lines.append(f"  {name:<52} {shown:>14}")
        if self.gauges:
            lines.append(f"gauges ({len(self.gauges)}):")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<52} {self.gauges[name]:>14.6g}")
        if self.histograms:
            lines.append(f"histograms ({len(self.histograms)}):")
            for name in sorted(self.histograms):
                h = self.histogram(name)
                if h.count == 0:
                    lines.append(f"  {name:<44} (empty)")
                    continue
                lines.append(
                    f"  {name:<44} n={h.count:<8} "
                    f"min={h.min:<10.4g} p50={h.quantile(0.5):<10.4g} "
                    f"p90={h.quantile(0.9):<10.4g} max={h.max:<10.4g} "
                    f"sum={h.sum:.6g}"
                )
        slowest = self.notes.get("pool.slowest_task")
        if slowest is not None:
            slowest_s = self.gauges.get("pool.slowest_task_s", 0.0)
            lines.append(
                f"slowest pool task: {slowest} ({_fmt_seconds(slowest_s)})"
            )
        other_notes = {
            k: v for k, v in self.notes.items() if k != "pool.slowest_task"
        }
        if other_notes:
            lines.append(f"notes ({len(other_notes)}):")
            for name in sorted(other_notes):
                lines.append(f"  {name:<52} {other_notes[name]}")
        if self.timeseries.get("samples"):
            samples = self.timeseries["samples"]
            rss = [s.get("rss_bytes", 0) for s in samples]
            lines.append(
                f"timeseries: {self.timeseries.get('n_samples', len(samples))} "
                f"samples @ {self.timeseries.get('period_s', 0)}s "
                f"({self.timeseries.get('n_dropped', 0)} dropped), "
                f"rss {_fmt_bytes(min(rss))} -> {_fmt_bytes(max(rss))}"
            )
        worker_rings = self.timeseries.get("workers")
        if worker_rings:
            lines.append(
                f"worker timeseries: {len(worker_rings)} rings, "
                f"{sum(len(r.get('samples', ())) for r in worker_rings)} samples"
            )
        streams = self.trace_streams()
        if streams:
            n_events = sum(len(s.get("events", ())) for s in streams)
            workers = [s.get("worker", "?") for s in streams[1:]]
            suffix = f" (workers: {', '.join(workers)})" if workers else ""
            lines.append(
                f"trace: {len(streams)} process streams, "
                f"{n_events} events{suffix} — "
                f"render with `repro obs timeline`"
            )
        return "\n".join(lines)
