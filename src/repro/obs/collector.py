"""Span/counter collection for the self-tracing observability layer.

The paper's own methodology (§2.5) insisted that the tracing system
measure *itself* — buffered records, counted messages, benchmarked
overhead.  :class:`Observer` applies the same discipline to this
reproduction: hierarchical timed spans (wall + CPU clock per subtree),
monotonic counters, last-write gauges, and a snapshot format cheap
enough to ship across the fork-based worker pools so parallel runs lose
nothing.

:class:`NullObserver` is the disabled twin: every operation is a no-op
method on a slotted singleton, so instrumented call sites cost one
attribute lookup and one call when observation is off — the property
``benchmarks/bench_instrumentation_overhead.py`` measures the same way
the paper measured CHARISMA's overhead.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

try:  # pragma: no cover - absent only on non-POSIX platforms
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

import sys

from repro.obs.context import TraceContext, TraceLog
from repro.obs.hist import Histogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.flight import FlightRecorder
    from repro.obs.sampler import Sampler


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; both are
    normalized here.
    """
    if resource is None:  # pragma: no cover - Windows
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024


class SpanNode:
    """One node of the merged span tree.

    Repeated entries of the same span name under the same parent fold
    into one node (``count`` tracks how many times it was entered), so
    per-job or per-figure spans stay bounded regardless of scale.
    """

    __slots__ = ("name", "count", "wall_s", "cpu_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.children: dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        """Get-or-create the named child node."""
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    def n_nodes(self) -> int:
        """Distinct span nodes in this subtree (excluding self)."""
        return sum(1 + c.n_nodes() for c in self.children.values())

    def n_entries(self) -> int:
        """Total span entries recorded in this subtree (excluding self)."""
        return sum(c.count + c.n_entries() for c in self.children.values())

    def to_dict(self) -> dict:
        """Plain-JSON form (recursively)."""
        return {
            "name": self.name,
            "count": self.count,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanNode":
        """Rebuild a subtree from :meth:`to_dict` output."""
        node = cls(str(payload["name"]))
        node.count = int(payload.get("count", 0))
        node.wall_s = float(payload.get("wall_s", 0.0))
        node.cpu_s = float(payload.get("cpu_s", 0.0))
        for child in payload.get("children", ()):
            sub = cls.from_dict(child)
            node.children[sub.name] = sub
        return node

    def merge_dict(self, payload: dict) -> None:
        """Fold a :meth:`to_dict` subtree into this node's children."""
        for child in payload.get("children", ()):
            node = self.child(str(child["name"]))
            node.count += int(child.get("count", 0))
            node.wall_s += float(child.get("wall_s", 0.0))
            node.cpu_s += float(child.get("cpu_s", 0.0))
            node.merge_dict(child)


class _SpanHandle:
    """Context manager timing one entry of one span."""

    __slots__ = ("_observer", "_name", "_node", "_w0", "_c0")

    def __init__(self, observer: "Observer", name: str) -> None:
        self._observer = observer
        self._name = name

    def __enter__(self) -> SpanNode:
        observer = self._observer
        stack = observer._stack
        self._node = stack[-1].child(self._name)
        stack.append(self._node)
        flight = observer.flight
        if flight is not None:
            flight.record("span_open", self._name)
        tracelog = observer.tracelog
        if tracelog is not None:
            tracelog.begin_span(self._name)
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()
        return self._node

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._w0
        self._node.wall_s += wall
        self._node.cpu_s += time.process_time() - self._c0
        self._node.count += 1
        observer = self._observer
        stack = observer._stack
        if stack[-1] is self._node:
            stack.pop()
        elif self._node in stack:  # pragma: no cover - unbalanced exits
            del stack[stack.index(self._node):]
        observer.hist(f"span.{self._name}.seconds", wall)
        tracelog = observer.tracelog
        if tracelog is not None:
            tracelog.end_span(
                self._name,
                error=exc_type.__name__ if exc_type is not None else None,
            )
        flight = observer.flight
        if flight is not None:
            if exc_type is not None:
                flight.record(
                    "span_error", self._name,
                    wall_s=round(wall, 6), error=exc_type.__name__,
                )
            else:
                flight.record("span_close", self._name, wall_s=round(wall, 6))
        return False


class Observer:
    """A live per-run collector of spans, counters, gauges and histograms."""

    enabled = True

    def __init__(self, context: TraceContext | None = None) -> None:
        self.root = SpanNode("run")
        self._stack: list[SpanNode] = [self.root]
        self.counters: dict[str, int | float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.notes: dict[str, str] = {}
        #: optional crash-forensics ring (attached by the CLI's --obs path)
        self.flight: FlightRecorder | None = None
        #: optional background time-series sampler (attached alongside)
        self.sampler: Sampler | None = None
        #: per-process causal event stream; None unless a TraceContext
        #: was supplied (the CLI's --obs path and pool workers do)
        self.tracelog: TraceLog | None = (
            TraceLog(context) if context is not None else None
        )
        #: flushed worker sampler rings folded in by merge_snapshot
        self.worker_timeseries: list[dict] = []
        self.started_at = time.time()
        self._w0 = time.perf_counter()
        self._c0 = time.process_time()

    def span(self, name: str) -> _SpanHandle:
        """Open a timed span nested under the currently open span."""
        return _SpanHandle(self, name)

    def add(self, name: str, value: int | float = 1) -> None:
        """Increment a monotonic counter."""
        self.counters[name] = self.counters.get(name, 0) + value
        flight = self.flight
        if flight is not None and value >= flight.counter_threshold:
            flight.record("counter_bump", name, value=value)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (last write wins)."""
        self.gauges[name] = float(value)

    def hist(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        h.add(value)

    def hist_many(self, name: str, values) -> None:
        """Record a batch of samples (vectorized for numpy arrays)."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        h.add_many(values)

    def note(self, name: str, text: str) -> None:
        """Attach a short string annotation (last write wins)."""
        self.notes[name] = str(text)

    def event(self, kind: str, name: str, **fields) -> None:
        """Record a structured event into the flight recorder, if any."""
        flight = self.flight
        if flight is not None:
            flight.record(kind, name, **fields)

    # -- crossing process boundaries -----------------------------------------

    def snapshot(self) -> dict:
        """Everything recorded so far as plain JSON types.

        Worker processes return this alongside their task result so the
        parent can fold their observations into its own tree (see
        :func:`repro.util.pool.map_tasks`).
        """
        snap = {
            "spans": self.root.to_dict(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.to_dict() for k, h in self.histograms.items()},
            "notes": dict(self.notes),
        }
        if self.tracelog is not None:
            snap["trace"] = self.tracelog.payload()
        if self.worker_timeseries:
            snap["worker_timeseries"] = list(self.worker_timeseries)
        sampler = self.sampler
        if sampler is not None:
            ring = sampler.flush()
            if ring.get("samples"):
                snap.setdefault("worker_timeseries", []).append(ring)
        return snap

    def merge_snapshot(self, payload: dict) -> None:
        """Fold another observer's :meth:`snapshot` under the open span.

        Histogram merges are associative and commutative (fixed bucket
        base), so folding worker snapshots in submission order yields
        the same aggregate a serial run would record.
        """
        self._stack[-1].merge_dict(payload.get("spans", {}))
        for name, value in payload.get("counters", {}).items():
            self.add(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name, value)
        for name, hd in payload.get("histograms", {}).items():
            h = self.histograms.get(name)
            if h is None:
                h = self.histograms[name] = Histogram()
            h.merge_dict(hd)
        for name, text in payload.get("notes", {}).items():
            self.note(name, text)
        trace = payload.get("trace")
        if trace and self.tracelog is not None:
            self.tracelog.add_child(trace)
        worker_ts = payload.get("worker_timeseries")
        if worker_ts:
            self.worker_timeseries.extend(worker_ts)

    def trace_payload(self) -> dict:
        """The full trace tree (this stream + nested workers), or ``{}``."""
        if self.tracelog is None:
            return {}
        return self.tracelog.payload()

    # -- finalization ---------------------------------------------------------

    def report(self, command: list[str] | None = None,
               timeseries: dict | None = None):
        """Freeze the run into a serializable :class:`~repro.obs.report.RunReport`.

        ``timeseries`` is a flushed :class:`~repro.obs.sampler.Sampler`
        payload (empty when the run sampled nothing).
        """
        from repro.obs.report import RunReport

        return RunReport(
            command=list(command) if command else [],
            started_at=self.started_at,
            wall_s=time.perf_counter() - self._w0,
            cpu_s=time.process_time() - self._c0,
            peak_rss_bytes=peak_rss_bytes(),
            spans=self.root.to_dict(),
            counters={k: self.counters[k] for k in sorted(self.counters)},
            gauges={k: self.gauges[k] for k in sorted(self.gauges)},
            histograms={
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
            notes={k: self.notes[k] for k in sorted(self.notes)},
            timeseries=self._merged_timeseries(timeseries),
            trace=self.trace_payload(),
        )

    def _merged_timeseries(self, timeseries: dict | None) -> dict:
        """The parent sampler ring plus any worker rings folded back."""
        merged = dict(timeseries) if timeseries else {}
        if self.worker_timeseries:
            merged["workers"] = list(self.worker_timeseries)
        return merged


class _NullSpan:
    """Reusable do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullObserver:
    """The disabled observer: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False
    flight = None
    sampler = None
    tracelog = None

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, value: int | float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def hist(self, name: str, value: float) -> None:
        pass

    def hist_many(self, name: str, values) -> None:
        pass

    def note(self, name: str, text: str) -> None:
        pass

    def event(self, kind: str, name: str, **fields) -> None:
        pass

    def merge_snapshot(self, payload: dict) -> None:
        pass


NULL_OBSERVER = NullObserver()
