"""``repro.obs`` — the self-tracing observability layer.

CHARISMA's core contribution was an instrumentation methodology whose
own cost was measured (§2.5); this package turns the same lens on the
reproduction itself.  A module-level observer singleton collects
hierarchical timed spans, monotonic counters, and gauges from every
layer — machine model, CFS, cache simulators, workload generator, and
the §4 analyzers — and freezes them into a JSON
:class:`~repro.obs.report.RunReport`.

Usage at a call site (always safe, near-zero cost when disabled)::

    from repro import obs

    with obs.span("core/characterize"):
        ...
    obs.add("core.filestats.files", n_files)
    obs.gauge("machine.clock_drift_spread_s", spread)

By default the singleton is :data:`NULL_OBSERVER` — every call is a
no-op method on a slotted object, so instrumented code paths stay
byte-identical in output and within noise in runtime (proved by
``benchmarks/bench_instrumentation_overhead.py``).  :func:`enable`
installs a live :class:`~repro.obs.collector.Observer`; the CLI does
this for ``--obs`` runs and writes the report at exit, and
``python -m repro obsreport PATH`` pretty-prints one back.
"""

from __future__ import annotations

from repro.obs.collector import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    SpanNode,
    peak_rss_bytes,
)
from repro.obs.context import TraceContext, TraceLog
from repro.obs.flight import FlightRecorder
from repro.obs.hist import Histogram
from repro.obs.report import RunReport
from repro.obs.sampler import Sampler

__all__ = [
    "NULL_OBSERVER",
    "FlightRecorder",
    "Histogram",
    "NullObserver",
    "Observer",
    "RunReport",
    "Sampler",
    "SpanNode",
    "TraceContext",
    "TraceLog",
    "add",
    "current",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "hist",
    "hist_many",
    "note",
    "peak_rss_bytes",
    "span",
]

#: the installed observer; NULL_OBSERVER unless :func:`enable` was called
_OBSERVER: Observer | NullObserver = NULL_OBSERVER


def current() -> Observer | NullObserver:
    """The currently installed observer."""
    return _OBSERVER


def enabled() -> bool:
    """Whether observations are being collected."""
    return _OBSERVER.enabled


def enable(context: TraceContext | None = None) -> Observer:
    """Install (and return) a fresh collecting observer.

    Passing a :class:`TraceContext` additionally opens a causal event
    stream (:class:`TraceLog`) so spans and scheduler events feed the
    cross-process timeline; without one the observer behaves exactly as
    before.
    """
    global _OBSERVER
    _OBSERVER = Observer(context)
    return _OBSERVER


def disable() -> None:
    """Restore the no-op observer."""
    global _OBSERVER
    _OBSERVER = NULL_OBSERVER


def span(name: str):
    """Open a timed span on the installed observer (no-op when disabled)."""
    return _OBSERVER.span(name)


def add(name: str, value: int | float = 1) -> None:
    """Increment a counter on the installed observer."""
    _OBSERVER.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the installed observer."""
    _OBSERVER.gauge(name, value)


def hist(name: str, value: float) -> None:
    """Record one histogram sample on the installed observer."""
    _OBSERVER.hist(name, value)


def hist_many(name: str, values) -> None:
    """Record a batch of histogram samples on the installed observer."""
    _OBSERVER.hist_many(name, values)


def note(name: str, text: str) -> None:
    """Attach a string annotation on the installed observer."""
    _OBSERVER.note(name, text)


def event(kind: str, name: str, **fields) -> None:
    """Record a flight-recorder event on the installed observer."""
    _OBSERVER.event(kind, name, **fields)
