"""Standard-format exporters for run reports.

A :class:`~repro.obs.report.RunReport` is this project's native record,
but production telemetry stacks speak a small number of lingua francas.
Two are supported:

- **Prometheus text exposition format** (:func:`to_prometheus`):
  counters become ``*_total`` counter families, gauges become gauges,
  span totals become three counter families labelled by span path, and
  every :class:`~repro.obs.hist.Histogram` becomes a classic Prometheus
  histogram — cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count`` — so quantiles keep working downstream via
  ``histogram_quantile()``.
- **JSONL event log** (:func:`to_jsonl`): one self-describing JSON
  object per line (``{"type": "counter", ...}``), the shape log
  shippers and ad-hoc ``jq`` pipelines want.

Both are pure functions of the report; the CLI front-end is
``python -m repro obs export REPORT --format {prom,jsonl}``.
"""

from __future__ import annotations

import json
import re

from repro.obs.hist import Histogram
from repro.obs.report import RunReport

#: every exported metric family carries this prefix
PREFIX = "repro_"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """A dotted/slashed internal name as a valid Prometheus metric name."""
    cleaned = _INVALID.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return PREFIX + cleaned


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return f"{float(value):.10g}"


def to_prometheus(report: RunReport) -> str:
    """Render a run report in the Prometheus text exposition format."""
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    # -- process-level totals
    family(f"{PREFIX}run_wall_seconds", "gauge", "Wall-clock time of the observed run.")
    lines.append(f"{PREFIX}run_wall_seconds {_fmt(report.wall_s)}")
    family(f"{PREFIX}run_cpu_seconds", "gauge", "CPU time of the observed run.")
    lines.append(f"{PREFIX}run_cpu_seconds {_fmt(report.cpu_s)}")
    family(f"{PREFIX}run_peak_rss_bytes", "gauge", "Peak resident set size.")
    lines.append(f"{PREFIX}run_peak_rss_bytes {_fmt(report.peak_rss_bytes)}")
    family(f"{PREFIX}run_info", "gauge", "Report metadata carried as labels.")
    command = _escape_label(" ".join(report.command))
    lines.append(
        f'{PREFIX}run_info{{version="{report.version}",command="{command}"}} 1'
    )

    # -- counters
    for name in sorted(report.counters):
        fam = metric_name(name)
        if not fam.endswith("_total"):
            fam += "_total"
        family(fam, "counter", f"Counter {name} from the run report.")
        lines.append(f"{fam} {_fmt(report.counters[name])}")

    # -- gauges
    for name in sorted(report.gauges):
        fam = metric_name(name)
        family(fam, "gauge", f"Gauge {name} from the run report.")
        lines.append(f"{fam} {_fmt(report.gauges[name])}")

    # -- span totals, labelled by path
    spans: list[tuple[str, int, float, float]] = []

    def walk(node, prefix: str) -> None:
        for child in node.children.values():
            path = f"{prefix}/{child.name}" if prefix else child.name
            spans.append((path, child.count, child.wall_s, child.cpu_s))
            walk(child, path)

    walk(report.span_tree, "")
    if spans:
        family(f"{PREFIX}span_entries_total", "counter", "Entries per span path.")
        for path, count, _, _ in spans:
            lines.append(
                f'{PREFIX}span_entries_total{{path="{_escape_label(path)}"}} {count}'
            )
        family(f"{PREFIX}span_wall_seconds_total", "counter",
               "Wall-clock seconds per span path.")
        for path, _, wall, _ in spans:
            lines.append(
                f'{PREFIX}span_wall_seconds_total{{path="{_escape_label(path)}"}} '
                f"{_fmt(wall)}"
            )
        family(f"{PREFIX}span_cpu_seconds_total", "counter",
               "CPU seconds per span path.")
        for path, _, _, cpu in spans:
            lines.append(
                f'{PREFIX}span_cpu_seconds_total{{path="{_escape_label(path)}"}} '
                f"{_fmt(cpu)}"
            )

    # -- histograms (classic cumulative-bucket form)
    for name in sorted(report.histograms):
        h = Histogram.from_dict(report.histograms[name])
        fam = metric_name(name)
        family(fam, "histogram", f"Distribution {name} from the run report.")
        for upper, cum in h.cumulative_buckets():
            lines.append(f'{fam}_bucket{{le="{_fmt(upper)}"}} {cum}')
        lines.append(f'{fam}_bucket{{le="+Inf"}} {h.count}')
        lines.append(f"{fam}_sum {_fmt(h.sum)}")
        lines.append(f"{fam}_count {h.count}")

    return "\n".join(lines) + "\n"


def to_jsonl(report: RunReport) -> str:
    """Render a run report as a JSONL event log (one object per line)."""
    records: list[dict] = [
        {
            "type": "run",
            "version": report.version,
            "command": report.command,
            "started_at": report.started_at,
            "wall_s": report.wall_s,
            "cpu_s": report.cpu_s,
            "peak_rss_bytes": report.peak_rss_bytes,
        }
    ]
    for name in sorted(report.counters):
        records.append(
            {"type": "counter", "name": name, "value": report.counters[name]}
        )
    for name in sorted(report.gauges):
        records.append(
            {"type": "gauge", "name": name, "value": report.gauges[name]}
        )

    def walk(node, prefix: str) -> None:
        for child in node.children.values():
            path = f"{prefix}/{child.name}" if prefix else child.name
            records.append({
                "type": "span",
                "path": path,
                "count": child.count,
                "wall_s": child.wall_s,
                "cpu_s": child.cpu_s,
            })
            walk(child, path)

    walk(report.span_tree, "")
    for name in sorted(report.histograms):
        h = Histogram.from_dict(report.histograms[name])
        rec = {
            "type": "histogram",
            "name": name,
            "count": h.count,
            "sum": h.sum,
        }
        if h.count:
            rec.update({
                "min": h.min,
                "max": h.max,
                "p50": h.quantile(0.5),
                "p90": h.quantile(0.9),
                "p99": h.quantile(0.99),
            })
        records.append(rec)
    for name in sorted(report.notes):
        records.append({"type": "note", "name": name, "text": report.notes[name]})
    for sample in report.timeseries.get("samples", []):
        records.append({"type": "sample", **sample})
    return "\n".join(json.dumps(r, sort_keys=True) for r in records) + "\n"
