"""Opt-in background time-series sampler for observed runs.

Spans and counters answer *where the time went*; they cannot answer
*what the process looked like while it went there* — whether RSS climbed
monotonically through a streaming run, whether the CPU sat idle during a
pool fan-out, when a counter's growth rate changed.  The sampler fills
that gap: a daemon thread wakes at a fixed period and appends one sample
— current RSS, cumulative CPU time, every gauge value, and the delta of
every counter since the previous sample — to a bounded ring buffer.

The ring keeps memory constant on runs of any length (the same
bounded-buffer discipline the paper's per-node collectors used, §2.5);
``n_dropped`` records how much history was evicted.  The flush lands in
the :class:`~repro.obs.report.RunReport` ``timeseries`` field (schema
v2), so exporters and the regression gate see it like any other metric.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from repro.obs.collector import Observer

#: default sampling period, seconds
DEFAULT_PERIOD_S = 0.5

#: default ring capacity (samples)
DEFAULT_CAPACITY = 720

#: schema version of the flushed ``timeseries`` payload
TIMESERIES_VERSION = 1


def current_rss_bytes() -> int:
    """Resident set size right now, in bytes (0 when unknowable).

    Unlike :func:`repro.obs.collector.peak_rss_bytes` (the high-water
    mark), this reads the *current* value, so a falling RSS is visible.
    """
    try:
        with open("/proc/self/statm") as fh:
            fields = fh.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


class Sampler:
    """Samples one observer's process state on a fixed period."""

    def __init__(
        self,
        observer: Observer,
        period_s: float = DEFAULT_PERIOD_S,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if period_s <= 0:
            raise ValueError("sampling period must be positive")
        if capacity <= 0:
            raise ValueError("sampler capacity must be positive")
        self.observer = observer
        self.period_s = float(period_s)
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._n_samples = 0
        self._last_counters: dict[str, float] = {}
        self._t0 = time.perf_counter()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # peek() is served from the daemon's HTTP request threads while
        # the sampling thread appends: every ring/counter access is
        # locked so a scrape never sees (or trips over) a half-applied
        # sample — list(deque) raises RuntimeError if the deque mutates
        # mid-iteration
        self._lock = threading.Lock()

    # -- sampling -------------------------------------------------------------

    def sample_once(self) -> dict:
        """Take one sample immediately (the thread body; also testable)."""
        counters = dict(self.observer.counters)  # atomic under the GIL
        with self._lock:
            deltas = {
                name: value - self._last_counters.get(name, 0)
                for name, value in counters.items()
                if value != self._last_counters.get(name, 0)
            }
            self._last_counters = counters
            sample = {
                "t_s": round(time.perf_counter() - self._t0, 6),
                "rss_bytes": current_rss_bytes(),
                "cpu_s": time.process_time(),
                "gauges": dict(self.observer.gauges),
                "counter_deltas": deltas,
            }
            self._ring.append(sample)
            self._n_samples += 1
        return sample

    def _loop(self) -> None:
        while not self._stop.wait(self.period_s):
            self.sample_once()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Sampler":
        """Begin sampling on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-obs-sampler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread (idempotent, joins briefly)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, 2 * self.period_s))
            self._thread = None

    @property
    def n_dropped(self) -> int:
        """Samples evicted from the ring."""
        return self._n_samples - len(self._ring)

    def peek(self) -> dict:
        """The ring contents *without* stopping the sampling thread.

        The live telemetry endpoint (:mod:`repro.obs.server`) serves
        this mid-run from HTTP request threads; the snapshot is taken
        under the sampling lock, so a concurrent :meth:`sample_once`,
        :meth:`flush`, or :meth:`stop` can never tear it.
        """
        with self._lock:
            return {
                "version": TIMESERIES_VERSION,
                "period_s": self.period_s,
                "capacity": self.capacity,
                "n_samples": self._n_samples,
                "n_dropped": self._n_samples - len(self._ring),
                "samples": list(self._ring),
            }

    def flush(self) -> dict:
        """Stop sampling and return the ``timeseries`` report payload.

        Always takes one final sample so even a run shorter than the
        period leaves a data point.
        """
        self.stop()
        self.sample_once()
        return self.peek()
