"""Flight recorder: a fixed-size ring of recent structured events.

The paper's tracing system kept *buffered* per-node records precisely so
a long production run did not pay for its own forensics (§2.5).  The
flight recorder applies the idea to crash analysis: while an observed
run executes, the last N structured events — span opens and closes,
large counter bumps, pool task dispatches — sit in a bounded ring.  In
the happy path the ring is simply dropped; when the CLI dies with an
unhandled exception the ring is dumped next to the run report, so a
failed multi-hour streaming run leaves a record of what it was doing in
its final moments.

Recording is append-to-a-``deque`` cheap and only ever happens when an
:class:`~repro.obs.collector.Observer` with an attached recorder is
installed — the disabled path keeps its byte-identical no-op property.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

#: default ring capacity (events)
DEFAULT_CAPACITY = 256

#: counter increments at or above this value get a flight event
DEFAULT_COUNTER_THRESHOLD = 100_000.0


class FlightRecorder:
    """A bounded ring buffer of recent observability events."""

    __slots__ = ("capacity", "counter_threshold", "_ring", "_seq", "_t0")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        counter_threshold: float = DEFAULT_COUNTER_THRESHOLD,
    ) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self.counter_threshold = counter_threshold
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._t0 = time.perf_counter()

    def record(self, kind: str, name: str, **fields) -> None:
        """Append one event, evicting the oldest when full."""
        self._seq += 1
        event = {
            "seq": self._seq,
            "t_s": round(time.perf_counter() - self._t0, 6),
            "kind": kind,
            "name": name,
        }
        if fields:
            event.update(fields)
        self._ring.append(event)

    # -- introspection --------------------------------------------------------

    @property
    def n_recorded(self) -> int:
        """Events recorded over the recorder's lifetime."""
        return self._seq

    @property
    def n_dropped(self) -> int:
        """Events evicted from the ring."""
        return self._seq - len(self._ring)

    def events(self) -> list[dict]:
        """The retained events, oldest first."""
        return list(self._ring)

    # -- dumping --------------------------------------------------------------

    def to_dict(self, reason: str | None = None) -> dict:
        return {
            "capacity": self.capacity,
            "n_recorded": self.n_recorded,
            "n_dropped": self.n_dropped,
            "reason": reason,
            "events": self.events(),
        }

    def dump(self, path: str | Path, reason: str | None = None) -> Path:
        """Write the ring to ``path`` as JSON (the CLI crash path)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(reason=reason), indent=2) + "\n")
        return path
