"""Cross-process trace-context propagation.

The paper instrumented a *parallel* machine: per-node collectors wrote
records whose value came from being stitched into one machine-wide
picture (§2.5).  Since PR 7 this reproduction fans work out the same way
— pool tasks, stolen tasks, shard replays — but each worker's
observations came back as an isolated snapshot blob with no causal
thread back to the dispatch that created it.  This module adds that
thread.

A :class:`TraceContext` identifies one *process's* event stream inside
one observed run:

- ``run_id`` — shared by every process of the run;
- ``span_id`` — the stream's synthetic root span (the worker's task
  execution), unique across processes;
- ``parent_span_id`` — the span open in the *dispatching* process when
  this worker was handed its task, i.e. the causal parent;
- ``worker`` — a human label (``main``, ``w3``, ``shard2``,
  ``pid1234``);
- ``epoch0``/``perf0`` — a wall-clock/monotonic-clock calibration pair
  taken at stream creation.  ``time.perf_counter()`` is monotonic but
  process-local; recording each stream's offset lets
  :mod:`repro.obs.timeline` place all streams on one shared clock
  (``t_abs = epoch0 + (t - perf0)``) without trusting the wall clock
  for intra-process ordering.

The context crosses process boundaries as a small picklable *wire*
dict (:meth:`TraceContext.handoff` → :meth:`TraceContext.adopt`):
the parent stamps the causal parent span and a per-fan-out batch token,
the child stamps its own calibration.  Dispatch→start, steal→start and
result→merge events on both sides share ``key`` fields derived from the
batch token, which is how the timeline draws its happens-before edges.

A :class:`TraceLog` is the per-process event stream itself: span
begin/end records emitted by :class:`~repro.obs.collector._SpanHandle`
plus the scheduler's semantic events (``dispatch``, ``task_start``,
``steal``, ``requeue``, ``merge``, ...).  Worker logs travel back to
the parent inside the observer snapshot and nest as ``children`` of the
parent's log; :meth:`~repro.obs.collector.Observer.trace_payload`
freezes the whole tree into the run report (schema v3).
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass

#: schema version of a trace stream payload
TRACE_VERSION = 1

#: default per-stream event capacity; overflow is counted, not appended
DEFAULT_CAPACITY = 200_000


def _calibrate() -> tuple[float, float]:
    """A (wall clock, monotonic clock) pair read back to back."""
    return time.time(), time.perf_counter()


def _fresh_prefix() -> str:
    return uuid.uuid4().hex[:8]


@dataclass
class TraceContext:
    """Identity, causal parent, and clock calibration of one stream."""

    run_id: str
    span_id: str
    parent_span_id: str
    worker: str
    epoch0: float
    perf0: float

    @classmethod
    def root(cls, worker: str = "main") -> "TraceContext":
        """A fresh context for the process that owns the run."""
        epoch0, perf0 = _calibrate()
        return cls(
            run_id=uuid.uuid4().hex[:12],
            span_id=f"{_fresh_prefix()}:0",
            parent_span_id="",
            worker=worker,
            epoch0=epoch0,
            perf0=perf0,
        )

    def handoff(self, parent_span_id: str, batch: str) -> dict:
        """The picklable wire form a dispatching process hands a worker.

        ``parent_span_id`` is the span open at dispatch time (the causal
        parent of everything the worker records); ``batch`` is a token
        unique to one fan-out, shared by the edge ``key`` fields on both
        sides of the process boundary.
        """
        return {
            "version": TRACE_VERSION,
            "run_id": self.run_id,
            "parent_span_id": parent_span_id,
            "batch": batch,
        }

    @classmethod
    def adopt(cls, wire: dict, worker: str) -> "TraceContext":
        """Build a worker's context from a :meth:`handoff` wire dict,
        stamping the worker's own clock calibration."""
        epoch0, perf0 = _calibrate()
        return cls(
            run_id=str(wire["run_id"]),
            span_id=f"{_fresh_prefix()}:0",
            parent_span_id=str(wire["parent_span_id"]),
            worker=worker,
            epoch0=epoch0,
            perf0=perf0,
        )


class TraceLog:
    """One process's causally-annotated, clock-calibrated event stream."""

    __slots__ = (
        "context", "capacity", "events", "children", "n_dropped",
        "_open", "_seq", "_prefix",
    )

    def __init__(
        self, context: TraceContext, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        if capacity <= 0:
            raise ValueError("trace log capacity must be positive")
        self.context = context
        self.capacity = capacity
        self.events: list[dict] = []
        #: payloads of worker streams folded back through snapshot merge
        self.children: list[dict] = []
        self.n_dropped = 0
        self._open: list[str] = []
        self._seq = 0
        self._prefix = context.span_id.rsplit(":", 1)[0]

    # -- ids and causal position ----------------------------------------------

    def new_span_id(self) -> str:
        """A stream-unique span id (also used as fan-out batch tokens)."""
        self._seq += 1
        return f"{self._prefix}:{self._seq}"

    def current_span(self) -> str:
        """The innermost open span — the causal parent for new work."""
        return self._open[-1] if self._open else self.context.span_id

    # -- recording ------------------------------------------------------------

    def record(self, ev: str, name: str, **fields) -> None:
        """Append one event stamped with this process's monotonic clock."""
        if len(self.events) >= self.capacity:
            self.n_dropped += 1
            return
        event = {"ev": ev, "name": name, "t": time.perf_counter()}
        if fields:
            event.update(fields)
        self.events.append(event)

    def begin_span(self, name: str) -> str:
        """Record a span begin ("B") and push it on the open stack."""
        sid = self.new_span_id()
        self.record("B", name, span=sid, parent=self.current_span())
        self._open.append(sid)
        return sid

    def end_span(self, name: str, error: str | None = None) -> None:
        """Record the end ("E") of the innermost open span."""
        sid = self._open.pop() if self._open else self.context.span_id
        if error is not None:
            self.record("E", name, span=sid, error=error)
        else:
            self.record("E", name, span=sid)

    def add_child(self, payload: dict) -> None:
        """Nest a worker stream's payload under this log."""
        self.children.append(payload)

    # -- serialization --------------------------------------------------------

    def payload(self) -> dict:
        """The stream (and its nested worker streams) as plain JSON."""
        ctx = self.context
        return {
            "version": TRACE_VERSION,
            "run_id": ctx.run_id,
            "worker": ctx.worker,
            "pid": os.getpid(),
            "root_span": ctx.span_id,
            "parent_span": ctx.parent_span_id,
            "epoch0": ctx.epoch0,
            "perf0": ctx.perf0,
            "n_dropped": self.n_dropped,
            "events": list(self.events),
            "children": list(self.children),
        }
