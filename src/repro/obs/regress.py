"""Perf-regression gating: compare two metric records, fail on slowdown.

``benchmarks/BENCH_*.json`` files were written for five PRs before
anything *compared* them — a regression could ship silently as long as
each bench's own absolute assertions held.  This module closes the
loop: it loads two metric records (run reports or benchmark files, any
vintage), lines their numeric metrics up, and classifies each relative
change against a threshold.  The CLI front-end —
``python -m repro obs diff A B --threshold 0.1`` — exits nonzero when
any metric regressed, which is what CI wires against committed
baselines.

Three on-disk layouts are understood:

- a v1/v2 :class:`~repro.obs.report.RunReport` (``--obs`` output):
  process totals, ``counter.*``, ``gauge.*`` and ``hist.*`` summaries;
- the unified benchmark layout written by ``benchmarks/conftest.py``
  (``schema``/``metrics`` keys): the curated metric map, as-is;
- a legacy benchmark file: every numeric leaf, dot-joined.

Whether a change is a regression depends on the metric's *direction*:
``*_seconds`` going up is bad, ``*speedup*`` going up is good, and a
counter like ``events`` has no direction at all.  Direction is inferred
from the name (:func:`direction_of`); undirected metrics are reported
but never gate.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

from repro.errors import ObsReportError

#: name fragments marking a metric where smaller is better
_LOWER_BETTER = (
    "seconds", "overhead", "rss", "wall", "cpu", "_cost", "busy",
    "latency", "_bytes_read",
)

#: name fragments marking a metric where larger is better
_HIGHER_BETTER = (
    "speedup", "per_sec", "hit_rate", "throughput", "accuracy",
)

#: default relative-change gate
DEFAULT_THRESHOLD = 0.10


def direction_of(name: str) -> str:
    """``"lower"``, ``"higher"``, or ``"info"`` for a metric name."""
    n = name.lower()
    if any(tag in n for tag in _HIGHER_BETTER):
        return "higher"
    if n.endswith("_s") or any(tag in n for tag in _LOWER_BETTER):
        return "lower"
    return "info"


@dataclass(frozen=True)
class Delta:
    """One metric's change between the baseline and the candidate."""

    metric: str
    base: float
    new: float
    rel_change: float
    direction: str
    status: str  # ok | regression | improvement | info

    def describe(self) -> str:
        if math.isinf(self.rel_change):
            change = "+inf"
        else:
            change = f"{self.rel_change:+.1%}"
        return (
            f"{self.metric:<48} {self.base:>12.6g} -> {self.new:>12.6g} "
            f"{change:>9}  {self.status}"
        )


def _flatten(payload, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a nested payload, dot-joined."""
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            out.update(_flatten(value, f"{prefix}{key}."))
    elif isinstance(payload, (list, tuple)):
        for i, value in enumerate(payload):
            out.update(_flatten(value, f"{prefix}{i}."))
    elif isinstance(payload, bool):
        out[prefix[:-1]] = float(payload)
    elif isinstance(payload, (int, float)):
        out[prefix[:-1]] = float(payload)
    return out


def _report_metrics(payload: dict) -> dict[str, float]:
    from repro.obs.hist import Histogram
    from repro.obs.report import RunReport

    report = RunReport.from_dict(payload)
    metrics = {
        "wall_s": report.wall_s,
        "cpu_s": report.cpu_s,
        "peak_rss_bytes": float(report.peak_rss_bytes),
    }
    for name, value in report.counters.items():
        metrics[f"counter.{name}"] = float(value)
    for name, value in report.gauges.items():
        metrics[f"gauge.{name}"] = float(value)
    for name, hd in report.histograms.items():
        h = Histogram.from_dict(hd)
        if not h.count:
            continue
        metrics[f"hist.{name}.count"] = float(h.count)
        metrics[f"hist.{name}.sum"] = h.sum
        metrics[f"hist.{name}.p50"] = h.quantile(0.5)
        metrics[f"hist.{name}.p99"] = h.quantile(0.99)
        metrics[f"hist.{name}.max"] = h.max
    return metrics


def load_record(path: str | Path) -> tuple[str, int, dict[str, float]]:
    """Load any supported record as ``(kind, schema version, metrics)``.

    The schema version is the run report's ``version`` or the bench
    envelope's ``schema`` (0 for legacy benches, which predate both).
    Raises :class:`~repro.errors.ObsReportError` with a one-line message
    on unreadable, truncated, or unrecognizable files.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ObsReportError(
            f"cannot read {path}: {exc.strerror or exc}"
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ObsReportError(
            f"{path} is not valid JSON (truncated?): {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ObsReportError(f"{path}: expected a JSON object at top level")
    if "spans" in payload and "counters" in payload:
        try:
            metrics = _report_metrics(payload)
        except ObsReportError as exc:
            raise ObsReportError(f"{path}: {exc}") from exc
        return "run-report", int(payload.get("version", 1)), metrics
    if "metrics" in payload and "schema" in payload:
        metrics = payload["metrics"]
        if not isinstance(metrics, dict):
            raise ObsReportError(f"{path}: 'metrics' must be an object")
        return "bench", int(payload.get("schema", 0)), {
            str(k): float(v) for k, v in metrics.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    flat = _flatten(payload)
    if not flat:
        raise ObsReportError(f"{path}: no numeric metrics found")
    return "legacy-bench", 0, flat


def load_metrics(path: str | Path) -> tuple[str, dict[str, float]]:
    """Load any supported record as ``(kind, {metric: value})``.

    See :func:`load_record` for the version-aware form.
    """
    kind, _version, metrics = load_record(path)
    return kind, metrics


def missing_metrics(
    base: dict[str, float],
    new: dict[str, float],
    patterns: list[str] | None = None,
) -> tuple[list[str], list[str]]:
    """Metric names present on only one side: ``(only base, only new)``.

    :func:`compare` skips these (a gate compares like with like); the
    CLI warns about them so schema drift is visible instead of silent.
    """

    def wanted(name: str) -> bool:
        return not patterns or any(fnmatch(name, p) for p in patterns)

    only_base = sorted(n for n in set(base) - set(new) if wanted(n))
    only_new = sorted(n for n in set(new) - set(base) if wanted(n))
    return only_base, only_new


def compare(
    base: dict[str, float],
    new: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    patterns: list[str] | None = None,
) -> list[Delta]:
    """Classify every metric present in both records.

    ``patterns`` (fnmatch globs) restrict which metrics participate;
    metrics only present on one side are skipped — a *gate* compares
    like with like, it does not police schema drift.
    """
    deltas: list[Delta] = []
    for name in sorted(set(base) & set(new)):
        if patterns and not any(fnmatch(name, p) for p in patterns):
            continue
        b, n = base[name], new[name]
        if b == n:
            rel = 0.0
        elif b == 0.0:
            rel = math.inf if n > 0 else -math.inf
        else:
            rel = (n - b) / abs(b)
        d = direction_of(name)
        if d == "info":
            status = "info"
        elif d == "lower":
            status = ("regression" if rel > threshold
                      else "improvement" if rel < -threshold else "ok")
        else:
            status = ("regression" if rel < -threshold
                      else "improvement" if rel > threshold else "ok")
        deltas.append(Delta(name, b, n, rel, d, status))
    return deltas


def compare_files(
    base_path: str | Path,
    new_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
    patterns: list[str] | None = None,
) -> list[Delta]:
    """Load and compare two records (see :func:`load_metrics`)."""
    base_kind, base = load_metrics(base_path)
    new_kind, new = load_metrics(new_path)
    if base_kind != new_kind:
        raise ObsReportError(
            f"cannot compare a {base_kind} ({base_path}) against a "
            f"{new_kind} ({new_path})"
        )
    return compare(base, new, threshold=threshold, patterns=patterns)


def regressions(deltas: list[Delta]) -> list[Delta]:
    """The subset of deltas that should fail a gate."""
    return [d for d in deltas if d.status == "regression"]
