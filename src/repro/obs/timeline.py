"""Merging per-process trace streams into one causal timeline.

Recorder-style tooling (PAPERS.md) makes the case that per-rank traces
only become useful once they are stitched into a single visualizable,
causally-ordered picture.  This module is that stitch for the streams
:mod:`repro.obs.context` collects:

- **Clock alignment.**  Every stream carries an ``(epoch0, perf0)``
  calibration pair taken at stream creation; an event stamped ``t`` on
  a stream's process-local monotonic clock lands on the shared timeline
  at ``epoch0 + (t - perf0)``, shifted so the earliest event across all
  streams is zero.  Within one stream, ordering is exactly the
  monotonic-clock ordering; across streams it is as good as the hosts'
  wall clocks (on one machine: microseconds).
- **Span reconstruction.**  ``B``/``E`` event pairs become closed
  spans; spans still open when their stream ended are emitted with
  ``unclosed: true`` and extended to the stream's last event.  Each
  worker stream additionally gets a synthetic *root* span (its
  ``task_start``→``task_end`` execution window, or its full event
  range) carrying the stream's cross-process ``parent_span``, so every
  worker span chains back to the span that was open in the dispatching
  process.
- **Happens-before edges.**  ``dispatch``/``requeue``/``redispatch``
  (parent side), ``steal``/``task_start``/``task_end`` (worker side)
  and ``merge`` (parent side) events share a ``key`` unique to one
  task of one fan-out; they pair into ``dispatch→start``,
  ``steal→start`` and ``end→merge`` edges.

The result exports as Chrome trace-event JSON — the ``traceEvents``
array format both ``chrome://tracing`` and `Perfetto
<https://ui.perfetto.dev>`_ load directly: one named process lane per
stream (``M`` metadata events), ``X`` complete events for spans, and
``s``/``f`` flow events for the causal edges.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ObsReportError

#: event kinds recorded on the dispatching (parent) side of an edge key
_PARENT_SENDS = ("dispatch", "requeue", "redispatch")


@dataclass
class Timeline:
    """The merged, clock-aligned view of one traced run."""

    run_id: str = ""
    #: epoch seconds of timeline zero (the earliest event anywhere)
    t0_epoch: float = 0.0
    #: per-stream lane metadata: worker, pid, root_span, parent_span, ...
    streams: list[dict] = field(default_factory=list)
    #: reconstructed spans: name/span/parent/stream/t0_s/t1_s/...
    spans: list[dict] = field(default_factory=list)
    #: happens-before edges: kind/key/src fields and dst fields
    edges: list[dict] = field(default_factory=list)
    #: total events dropped to stream capacity limits
    n_dropped: int = 0

    @property
    def n_streams(self) -> int:
        return len(self.streams)

    def span_ids(self) -> set[str]:
        """Every span id present on the timeline."""
        return {s["span"] for s in self.spans}

    def unresolved_parents(self) -> list[dict]:
        """Spans whose parent id resolves to no span on the timeline."""
        known = self.span_ids()
        return [
            s for s in self.spans
            if s.get("parent") and s["parent"] not in known
        ]


def _flatten_streams(trace: dict) -> list[dict]:
    streams: list[dict] = []

    def walk(stream: dict) -> None:
        streams.append(stream)
        for child in stream.get("children", ()):
            walk(child)

    walk(trace)
    return streams


def _trace_of(source) -> dict:
    """Accept a RunReport, a report payload dict, or a raw trace payload."""
    trace = getattr(source, "trace", None)
    if trace is None and isinstance(source, dict):
        # a report payload has "trace"; a raw trace payload has "events"
        trace = source.get("trace") if "events" not in source else source
    if not trace or not isinstance(trace, dict):
        raise ObsReportError(
            "no trace in input: the run was not traced (schema v3 reports "
            "record one when --obs is on; older reports have none)"
        )
    return trace


def build_timeline(source) -> Timeline:
    """Merge every stream of a traced run into one :class:`Timeline`.

    ``source`` may be a :class:`~repro.obs.report.RunReport`, its
    ``to_dict`` payload, or a raw trace payload
    (:meth:`~repro.obs.context.TraceLog.payload`).  Raises
    :class:`~repro.errors.ObsReportError` when there is no trace.
    """
    trace = _trace_of(source)
    raw_streams = _flatten_streams(trace)

    # pass 1: clock alignment — find the earliest aligned instant
    def aligned(stream: dict, t: float) -> float:
        return float(stream.get("epoch0", 0.0)) + (
            t - float(stream.get("perf0", 0.0))
        )

    t0_epoch = min(
        (
            aligned(s, s["events"][0]["t"])
            for s in raw_streams
            if s.get("events")
        ),
        default=0.0,
    )

    timeline = Timeline(run_id=str(trace.get("run_id", "")), t0_epoch=t0_epoch)
    spans: list[dict] = []
    by_key: dict[str, list[tuple[str, int, float, dict]]] = {}

    for sid, stream in enumerate(raw_streams):
        events = stream.get("events", ())
        worker = str(stream.get("worker", f"stream{sid}"))
        rel = (
            lambda t, _s=stream: round(aligned(_s, t) - t0_epoch, 9)
        )
        times = [rel(e["t"]) for e in events]
        t_lo = min(times) if times else 0.0
        t_hi = max(times) if times else 0.0
        timeline.streams.append({
            "stream": sid,
            "worker": worker,
            "pid": int(stream.get("pid", 0)),
            "root_span": str(stream.get("root_span", "")),
            "parent_span": str(stream.get("parent_span", "")),
            "t0_s": t_lo,
            "t1_s": t_hi,
            "n_events": len(events),
        })
        timeline.n_dropped += int(stream.get("n_dropped", 0))

        # reconstruct B/E spans and collect edge endpoints
        open_spans: dict[str, dict] = {}
        order: list[str] = []
        task_window: list[float] = []
        for e, t in zip(events, times):
            ev = e["ev"]
            if ev == "B":
                node = {
                    "name": e["name"],
                    "span": e.get("span", ""),
                    "parent": e.get("parent", ""),
                    "stream": sid,
                    "worker": worker,
                    "t0_s": t,
                    "t1_s": t,
                }
                open_spans[node["span"]] = node
                order.append(node["span"])
            elif ev == "E":
                node = open_spans.pop(e.get("span", ""), None)
                if node is not None:
                    order.remove(node["span"])
                    node["t1_s"] = t
                    if e.get("error"):
                        node["error"] = e["error"]
                    spans.append(node)
            else:
                key = e.get("key")
                if key is not None:
                    by_key.setdefault(key, []).append((ev, sid, t, e))
                if ev in ("task_start", "task_end"):
                    task_window.append(t)
        # spans the stream never closed (crash, capacity overflow)
        for span_id in order:
            node = open_spans[span_id]
            node["t1_s"] = t_hi
            node["unclosed"] = True
            spans.append(node)

        # synthetic per-stream root span: the worker's execution window
        # (its cross-process parent is the dispatching process's span)
        root = {
            "name": worker,
            "span": str(stream.get("root_span", "")),
            "parent": str(stream.get("parent_span", "")),
            "stream": sid,
            "worker": worker,
            "t0_s": min(task_window) if task_window else t_lo,
            "t1_s": max(task_window) if task_window else t_hi,
            "root": True,
        }
        spans.append(root)

    # pass 2: pair edge endpoints by key into happens-before edges
    for key, points in by_key.items():
        sends = [p for p in points if p[0] in _PARENT_SENDS]
        steals = [p for p in points if p[0] == "steal"]
        starts = [p for p in points if p[0] == "task_start"]
        ends = [p for p in points if p[0] == "task_end"]
        merges = [p for p in points if p[0] == "merge"]

        def edge(kind: str, src, dst) -> dict:
            return {
                "kind": kind,
                "key": key,
                "name": src[3].get("name", ""),
                "src_stream": src[1],
                "dst_stream": dst[1],
                "t_src_s": src[2],
                "t_dst_s": dst[2],
            }

        for start in starts:
            # each execution chains from the closest prior dispatch (a
            # re-dispatched task has several sends); clamp to the first
            # send when clock skew puts the start before all of them
            prior = [s for s in sends if s[2] <= start[2]]
            send = max(prior, key=lambda p: p[2]) if prior else None
            if send is None and sends:
                send = min(sends, key=lambda p: p[2])
            if send is not None:
                timeline.edges.append(edge("dispatch", send, start))
        for steal in steals:
            after = [s for s in starts if s[1] == steal[1] and s[2] >= steal[2]]
            if after:
                start = min(after, key=lambda p: p[2])
                timeline.edges.append(edge("steal", steal, start))
        for merge in merges:
            prior = [e for e in ends if e[2] <= merge[2]]
            end = max(prior, key=lambda p: p[2]) if prior else None
            if end is None and ends:
                end = min(ends, key=lambda p: p[2])
            if end is not None:
                timeline.edges.append(edge("merge", end, merge))

    spans.sort(key=lambda s: (s["t0_s"], s["stream"]))
    timeline.spans = spans
    timeline.edges.sort(key=lambda e: (e["t_src_s"], e["key"]))
    return timeline


# -- Chrome trace-event / Perfetto export -------------------------------------


def to_chrome_trace(timeline: Timeline) -> dict:
    """The timeline as a Chrome trace-event JSON object.

    One process lane per stream (named after the worker), ``X``
    complete events for spans, ``s``/``f`` flow pairs for the causal
    edges.  Loadable by ``chrome://tracing`` and ui.perfetto.dev.
    """
    events: list[dict] = []
    for s in timeline.streams:
        lane = s["stream"]
        events.append({
            "ph": "M", "name": "process_name", "pid": lane, "tid": 0,
            "args": {"name": f"{s['worker']} (pid {s['pid']})"},
        })
        events.append({
            "ph": "M", "name": "process_sort_index", "pid": lane, "tid": 0,
            "args": {"sort_index": lane},
        })
    for span in timeline.spans:
        args = {"span": span["span"], "parent": span["parent"]}
        if span.get("error"):
            args["error"] = span["error"]
        if span.get("unclosed"):
            args["unclosed"] = True
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": "span" if not span.get("root") else "worker",
            "pid": span["stream"],
            "tid": 0,
            "ts": round(span["t0_s"] * 1e6, 3),
            "dur": round(max(0.0, span["t1_s"] - span["t0_s"]) * 1e6, 3),
            "args": args,
        })
    for i, e in enumerate(timeline.edges):
        flow_id = f"{e['kind']}:{e['key']}:{i}"
        common = {"cat": e["kind"], "name": e["kind"], "id": flow_id, "tid": 0}
        events.append({
            "ph": "s", "pid": e["src_stream"],
            "ts": round(e["t_src_s"] * 1e6, 3), **common,
        })
        events.append({
            "ph": "f", "bp": "e", "pid": e["dst_stream"],
            "ts": round(e["t_dst_s"] * 1e6, 3), **common,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": timeline.run_id,
            "t0_epoch": timeline.t0_epoch,
            "n_streams": timeline.n_streams,
            "n_dropped": timeline.n_dropped,
        },
    }


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check a :func:`to_chrome_trace` payload; returns problems.

    An empty list means every event carries the fields the Perfetto /
    chrome://tracing loaders require with sane types and every flow
    start has a matching flow end.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    flows: dict[str, set[str]] = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in ("X", "M", "s", "f", "i", "B", "E"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(e.get("pid"), int):
            problems.append(f"{where}: pid must be an int")
        if ph == "M":
            continue
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if ph in ("s", "f"):
            fid = e.get("id")
            if not isinstance(fid, (str, int)):
                problems.append(f"{where}: flow event needs an id")
            else:
                flows.setdefault(str(fid), set()).add(ph)
    for fid, phases in sorted(flows.items()):
        if phases != {"s", "f"}:
            problems.append(f"flow {fid!r}: unpaired ({'/'.join(sorted(phases))})")
    return problems


def write_chrome_trace(timeline: Timeline, path: str | Path) -> Path:
    """Export the timeline to ``path`` as Chrome trace-event JSON."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(timeline)) + "\n")
    return path


def render_summary(timeline: Timeline) -> str:
    """A terminal one-glance summary of the merged timeline."""
    lines = [
        f"timeline — run {timeline.run_id or '(unknown)'}: "
        f"{timeline.n_streams} streams, {len(timeline.spans)} spans, "
        f"{len(timeline.edges)} edges"
        + (f", {timeline.n_dropped} events dropped" if timeline.n_dropped else "")
    ]
    for s in timeline.streams:
        lines.append(
            f"  [{s['stream']:>2}] {s['worker']:<10} pid {s['pid']:<7} "
            f"{s['n_events']:>5} events  "
            f"{s['t0_s']:.6f}s -> {s['t1_s']:.6f}s"
        )
    kinds: dict[str, int] = {}
    for e in timeline.edges:
        kinds[e["kind"]] = kinds.get(e["kind"], 0) + 1
    if kinds:
        lines.append(
            "  edges: "
            + ", ".join(f"{k}×{v}" for k, v in sorted(kinds.items()))
        )
    unresolved = timeline.unresolved_parents()
    if unresolved:
        lines.append(
            f"  WARNING: {len(unresolved)} spans with unresolvable parents"
        )
    return "\n".join(lines)
