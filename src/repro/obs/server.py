"""Live telemetry endpoint: the first networked surface of ``repro.obs``.

The ROADMAP's collector→aggregator→query trace service needs a
pull-based way to look inside a running (or finished) observed run;
this module provides it with nothing but the standard library: a
:class:`ObsServer` wraps ``http.server.ThreadingHTTPServer`` on a
daemon thread and answers

- ``/metrics``  — Prometheus text exposition (reusing
  :func:`repro.obs.export.to_prometheus`), so a scraper pointed at a
  long characterization sees counters, gauges and histogram families
  update live;
- ``/healthz``  — a one-object JSON liveness probe (run id, uptime,
  pid, spans/counters so far);
- ``/timeline`` — the current causal timeline as Chrome trace-event
  JSON (:mod:`repro.obs.timeline`), downloadable mid-run and loadable
  in Perfetto;
- ``/``         — a plain-text index of the above.

Two modes share the same handler: **live** (constructed with the
running :class:`~repro.obs.collector.Observer`; every request takes a
fresh report snapshot, reading the sampler ring non-destructively via
:meth:`~repro.obs.sampler.Sampler.peek`) and **static** (constructed
with a saved :class:`~repro.obs.report.RunReport`, which is how
``repro obs serve report.json`` republishes a finished run).

The CLI exposes both: ``--obs-serve PORT`` on any observed command
serves live for the duration of the run, and ``repro obs serve``
serves a report file until interrupted.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import ObsReportError
from repro.obs.collector import Observer
from repro.obs.report import RunReport

log = logging.getLogger("repro.obs.server")

#: content type Prometheus scrapers expect
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ReusableThreadingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with explicit socket hygiene.

    ``allow_reuse_address`` sets ``SO_REUSEADDR`` before bind, so a
    freshly stopped server's port can be rebound immediately instead of
    lingering in TIME_WAIT — CI smoke jobs restart servers on the same
    port back to back.  Handler threads are daemonic so a hung client
    cannot block interpreter exit.  Bind port 0 to let the OS pick an
    ephemeral port; ``server_address[1]`` reports the bound choice.
    """

    allow_reuse_address = True
    daemon_threads = True


class ObsServer:
    """Serves one run's telemetry over HTTP from a daemon thread."""

    def __init__(
        self,
        observer: Observer | None = None,
        report: RunReport | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        command: list[str] | None = None,
    ) -> None:
        if (observer is None) == (report is None):
            raise ValueError("pass exactly one of observer= or report=")
        self.observer = observer
        self.report = report
        self.command = list(command) if command else []
        self._t0 = time.time()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._host = host
        self._requested_port = port

    # -- report access ---------------------------------------------------------

    @property
    def mode(self) -> str:
        return "live" if self.observer is not None else "static"

    def snapshot_report(self) -> RunReport:
        """The most current report: frozen for static, fresh for live."""
        if self.report is not None:
            return self.report
        observer = self.observer
        assert observer is not None
        sampler = observer.sampler
        timeseries = sampler.peek() if sampler is not None else None
        return observer.report(command=self.command, timeseries=timeseries)

    def health(self) -> dict:
        """The ``/healthz`` payload."""
        payload = {
            "status": "ok",
            "mode": self.mode,
            "uptime_s": round(time.time() - self._t0, 3),
        }
        if self.observer is not None:
            payload["pid"] = os.getpid()
            payload["n_counters"] = len(self.observer.counters)
            tracelog = self.observer.tracelog
            if tracelog is not None:
                payload["run_id"] = tracelog.context.run_id
                payload["n_trace_events"] = len(tracelog.events)
        else:
            assert self.report is not None
            payload["command"] = list(self.report.command)
            if self.report.trace:
                payload["run_id"] = str(self.report.trace.get("run_id", ""))
        return payload

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ObsServer":
        """Bind and begin serving on a daemon thread (idempotent)."""
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # route into our logger
                log.debug("%s %s", self.address_string(), fmt % args)

            def _send(self, code: int, content_type: str, body: str) -> None:
                data = body.encode("utf-8")
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    route = self.path.split("?", 1)[0].rstrip("/") or "/"
                    if route == "/healthz":
                        self._send(200, "application/json",
                                   json.dumps(server.health()) + "\n")
                    elif route == "/metrics":
                        from repro.obs.export import to_prometheus

                        self._send(200, _PROM_CONTENT_TYPE,
                                   to_prometheus(server.snapshot_report()))
                    elif route == "/timeline":
                        from repro.obs.timeline import (
                            build_timeline,
                            to_chrome_trace,
                        )

                        try:
                            timeline = build_timeline(server.snapshot_report())
                        except ObsReportError as exc:
                            self._send(404, "application/json",
                                       json.dumps({"error": str(exc)}) + "\n")
                            return
                        self._send(200, "application/json",
                                   json.dumps(to_chrome_trace(timeline)) + "\n")
                    elif route == "/":
                        self._send(
                            200, "text/plain; charset=utf-8",
                            "repro obs telemetry ({} mode)\n"
                            "  /metrics   Prometheus text exposition\n"
                            "  /healthz   liveness probe (JSON)\n"
                            "  /timeline  Chrome trace-event JSON "
                            "(load in ui.perfetto.dev)\n".format(server.mode),
                        )
                    else:
                        self._send(404, "text/plain; charset=utf-8",
                                   f"no such route {route}\n")
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass
                except Exception as exc:  # pragma: no cover - defensive
                    log.warning("telemetry request failed: %s", exc)
                    try:
                        self._send(500, "text/plain; charset=utf-8",
                                   f"internal error: {exc}\n")
                    except Exception:
                        pass

        self._httpd = ReusableThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        log.info("obs telemetry serving at %s (%s mode)", self.url, self.mode)
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves 0 to the ephemeral pick)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
