"""Mergeable log-bucketed histograms for distribution-valued metrics.

Counters say *how much*, gauges say *how much right now*; neither says
how a quantity was *distributed* — and the paper's headline results are
distributions (request sizes, Figure 4; interval sizes, Table 2).  A
:class:`Histogram` gives the observability layer the same vocabulary for
its own measurements: span durations, CFS request sizes, per-chunk
decode times, disk-op latencies, pool task durations.

Design constraints, in order:

1. **Mergeable.** Fork-based worker pools ship observation snapshots
   back to the parent (:func:`repro.util.pool.map_tasks`), so two
   histograms of the same quantity must combine into exactly the
   histogram a single process would have built.  Buckets are fixed
   geometric intervals of a *class-level* base — never per-instance —
   so bucket counts add associatively and commutatively; ``count``,
   ``min`` and ``max`` are exact under merge, and ``sum`` is exact up
   to float addition order.
2. **Sparse and cheap.** A bucket is a dict entry created on first hit;
   recording is one ``log``, one ``floor``, one dict update.  The JSON
   form is a plain dict so snapshots cross process boundaries as-is.
3. **Bounded-error quantiles.** The true q-quantile provably lies in
   the returned bucket, so every estimate carries a relative-error
   bound of one bucket width (``BASE`` — about 19% with the default
   quarter-power-of-two buckets).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

import numpy as np

#: geometric bucket growth factor: four buckets per power of two.
#: Class-level (not per-instance) so any two histograms merge.
BASE = 2.0 ** 0.25

_LOG_BASE = math.log(BASE)


def bucket_index(value: float) -> int:
    """The bucket holding ``value`` (> 0): index ``i`` covers
    ``[BASE**i, BASE**(i+1))``."""
    return math.floor(math.log(value) / _LOG_BASE)


class Histogram:
    """A sparse histogram over geometric buckets, exact at the margins.

    Non-positive samples (a zero-byte request, a clock that did not
    advance) land in a dedicated *zero bucket* rather than distorting
    the geometric range; ``min``/``max``/``sum``/``count`` remain exact
    over every sample recorded.
    """

    __slots__ = ("count", "sum", "min", "max", "zero", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: samples <= 0 (kept out of the log-spaced buckets)
        self.zero = 0
        #: bucket index -> sample count
        self.buckets: dict[int, int] = {}

    # -- recording ------------------------------------------------------------

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero += 1
            return
        idx = math.floor(math.log(value) / _LOG_BASE)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def add_many(self, values: Iterable[float] | np.ndarray) -> None:
        """Record a batch of samples (vectorized for numpy arrays)."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        positive = arr[arr > 0.0]
        self.zero += int(arr.size - positive.size)
        if positive.size:
            idx = np.floor(np.log(positive) / _LOG_BASE).astype(np.int64)
            uniq, counts = np.unique(idx, return_counts=True)
            for i, c in zip(uniq.tolist(), counts.tolist()):
                self.buckets[i] = self.buckets.get(i, 0) + c

    # -- combining ------------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram (returns self).

        Associative and commutative on counts/buckets/min/max; ``sum``
        commutes exactly and reassociates up to float rounding.
        """
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zero += other.zero
        for idx, c in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + c
        return self

    # -- quantiles ------------------------------------------------------------

    def quantile_bounds(self, q: float) -> tuple[float, float]:
        """``(lo, hi)`` bracketing the true q-quantile.

        The true quantile — ``sorted(samples)[ceil(q*n) - 1]`` — lies in
        ``[lo, hi]``; for samples in a geometric bucket the bounds are
        one bucket apart, so ``hi / lo <= BASE`` up to the exact-min/max
        clamp.
        """
        if self.count == 0:
            raise ValueError("empty histogram has no quantiles")
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = max(1, math.ceil(q * self.count))
        cum = self.zero
        if cum >= rank:
            return (min(self.min, 0.0), 0.0)
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            if cum >= rank:
                lo = BASE ** idx
                hi = BASE ** (idx + 1)
                return (max(lo, self.min) if self.min > 0 else lo,
                        min(hi, self.max))
        # unreachable unless counts are inconsistent
        return (self.min, self.max)  # pragma: no cover

    def quantile(self, q: float) -> float:
        """A point estimate of the q-quantile (the bracket's upper end,
        so the estimate never understates a latency)."""
        return self.quantile_bounds(q)[1]

    # -- export views ---------------------------------------------------------

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, Prometheus-style.

        Starts with the zero bucket (``le=0``) when occupied; the final
        implicit ``+Inf`` bucket is the total ``count``.
        """
        out: list[tuple[float, int]] = []
        cum = 0
        if self.zero:
            cum = self.zero
            out.append((0.0, cum))
        for idx in sorted(self.buckets):
            cum += self.buckets[idx]
            out.append((BASE ** (idx + 1), cum))
        return out

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON form (bucket keys become strings)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "zero": self.zero,
            "buckets": {str(i): self.buckets[i] for i in sorted(self.buckets)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Histogram":
        h = cls()
        h.count = int(payload.get("count", 0))
        h.sum = float(payload.get("sum", 0.0))
        if h.count:
            h.min = float(payload.get("min", 0.0))
            h.max = float(payload.get("max", 0.0))
        h.zero = int(payload.get("zero", 0))
        h.buckets = {int(k): int(v) for k, v in payload.get("buckets", {}).items()}
        return h

    def merge_dict(self, payload: dict) -> None:
        """Fold a :meth:`to_dict` payload in without materializing it."""
        self.merge(Histogram.from_dict(payload))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(n={self.count}, min={self.min:.4g}, "
            f"max={self.max:.4g}, mean={self.mean:.4g})"
        )
