"""CHARISMA reproduction: dynamic file-access characteristics of a
production parallel scientific workload (Kotz & Nieuwejaar, SC '94).

Top-level convenience re-exports; see the subpackages for the full API:

- :mod:`repro.machine` — the iPSC/860 model,
- :mod:`repro.cfs` — the Concurrent File System,
- :mod:`repro.trace` — tracing, collection, postprocessing,
- :mod:`repro.workload` — the calibrated synthetic workload,
- :mod:`repro.core` — the workload characterization (the paper's results),
- :mod:`repro.caching` — trace-driven cache simulation,
- :mod:`repro.strided` — strided-request coalescing (§5 future work).
"""

from repro.trace.frame import TraceFrame

__version__ = "1.0.0"

__all__ = ["TraceFrame", "__version__"]
