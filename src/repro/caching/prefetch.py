"""Sequential prefetching at the I/O nodes.

The paper's related work (§2.3) notes that prefetching helps in CFS and
that Miller & Katz saw benefit from prefetching even where caching
failed.  This module adds one-block-lookahead (OBL) style prefetching to
the I/O-node cache simulation: on a miss of file block ``b``, the I/O
node also fetches the *next blocks of the same file that it owns*
(``b + n, b + 2n, ...`` under round-robin striping) up to a configured
depth.

Prefetching pays off on the workload's sequential streams (whole-file
and blocked reads) and does nothing for the sub-block record traffic the
cache already captures, so its benefit concentrates exactly where plain
caching is weakest — the paper's large cold reads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caching.blockspan import expand_spans
from repro.caching.io_node import _build_caches, _resolve_stream
from repro.caching.policies import ReplacementPolicy
from repro.errors import CacheConfigError
from repro.trace.frame import TraceFrame
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class PrefetchResult:
    """Outcome of one prefetching simulation."""

    policy: str
    n_io_nodes: int
    total_buffers: int
    depth: int
    read_sub_requests: int
    read_hits: int
    prefetches_issued: int
    prefetches_used: int

    @property
    def hit_rate(self) -> float:
        """Read sub-request hit rate (same metric as Figure 9)."""
        return self.read_hits / self.read_sub_requests if self.read_sub_requests else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetched blocks that were touched before
        eviction (wasted prefetches pollute the cache and the disk)."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_used / self.prefetches_issued


class _PrefetchState:
    """Per-I/O-node bookkeeping of outstanding prefetched blocks."""

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending: set[tuple[int, int]] = set()

    def install(self, cache: ReplacementPolicy, key: tuple[int, int]) -> bool:
        """Install a prefetched block; returns True if newly fetched."""
        if key in cache:
            return False
        cache.touch(key)
        self.pending.add(key)
        return True

    def consume(self, key: tuple[int, int]) -> bool:
        """Mark a prefetched block as used on first demand touch."""
        if key in self.pending:
            self.pending.discard(key)
            return True
        return False


def simulate_io_node_prefetch(
    frame: TraceFrame | None,
    total_buffers: int,
    n_io_nodes: int = 10,
    policy: str = "lru",
    depth: int = 1,
    block_size: int = BLOCK_SIZE,
    stream: tuple[np.ndarray, ...] | None = None,
) -> PrefetchResult:
    """The Figure 9 simulation with ``depth``-block lookahead per I/O node.

    ``depth=0`` degenerates to the plain simulation (useful as the
    baseline in the same units).  ``stream`` lets callers reuse one
    precomputed request stream; the ``frame`` may then be ``None``.
    """
    if depth < 0:
        raise CacheConfigError("prefetch depth must be non-negative")
    files, first, last, nodes, is_read = _resolve_stream(frame, stream, block_size)
    caches = _build_caches(policy, total_buffers, n_io_nodes)
    states = [_PrefetchState() for _ in range(n_io_nodes)]

    spans = expand_spans(files, first, last)
    starts = spans.starts.tolist()
    blocks = spans.block.tolist()
    ios = spans.io_nodes(n_io_nodes).tolist()

    read_subs = read_hits = 0
    issued = used = 0
    for r, (f, rd) in enumerate(zip(files.tolist(), is_read.tolist())):
        touched: dict[int, bool] = {}
        trigger_blocks: list[int] = []
        for i in range(starts[r], starts[r + 1]):
            b = blocks[i]
            io = ios[i]
            cache = caches[io]
            key = (f, b)
            present = key in cache
            if present and states[io].consume(key):
                used += 1
                # tagged OBL: first use of a prefetched block keeps the
                # lookahead running down the sequential stream
                trigger_blocks.append(b)
            touched[io] = touched.get(io, True) and present
            cache.access(key)
            if not present:
                trigger_blocks.append(b)
        if rd:
            read_subs += len(touched)
            read_hits += sum(1 for ok in touched.values() if ok)
            # misses and consumed prefetches trigger lookahead on the
            # owning I/O node
            for b in trigger_blocks:
                io = b % n_io_nodes
                for ahead in range(1, depth + 1):
                    nxt = b + ahead * n_io_nodes
                    if states[io].install(caches[io], (f, nxt)):
                        issued += 1
    return PrefetchResult(
        policy=policy,
        n_io_nodes=n_io_nodes,
        total_buffers=total_buffers,
        depth=depth,
        read_sub_requests=read_subs,
        read_hits=read_hits,
        prefetches_issued=issued,
        prefetches_used=used,
    )


def prefetch_benefit(
    frame: TraceFrame | None,
    total_buffers: int,
    n_io_nodes: int = 10,
    depth: int = 1,
    block_size: int = BLOCK_SIZE,
    stream: tuple[np.ndarray, ...] | None = None,
) -> tuple[PrefetchResult, PrefetchResult]:
    """(baseline, prefetching) results at identical cache settings.

    The request stream is derived once and shared by both runs."""
    stream = _resolve_stream(frame, stream, block_size)
    base = simulate_io_node_prefetch(
        None, total_buffers, n_io_nodes=n_io_nodes, depth=0,
        block_size=block_size, stream=stream,
    )
    pref = simulate_io_node_prefetch(
        None, total_buffers, n_io_nodes=n_io_nodes, depth=depth,
        block_size=block_size, stream=stream,
    )
    return base, pref
