"""Compute-node cache simulation: Figure 8.

Each compute node gets a small cache of one-block (4 KB) read-only
buffers with LRU replacement.  A *hit* is a read request fully satisfied
from the local buffers — no message to any I/O node.  Write-buffering at
compute nodes would demand a consistency protocol (the block sharing in
write-only and read-write files shows why), so, like the paper, the
simulation restricts itself to read-only files.

The paper's findings this reproduces:

- per-job hit rates clump at ~0 %, mid-range, and >75 % (the cache
  either fits the access pattern or it does not);
- one buffer is almost as good as fifty — the locality is *spatial*
  (small sequential requests within a block), not temporal;
- the few jobs where more buffers help are those interleaving reads
  from several files at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.caching.blockspan import expand_spans
from repro.caching.policies import LRUPolicy
from repro.errors import CacheConfigError
from repro.trace.frame import TraceFrame
from repro.util.cdf import EmpiricalCDF
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class ComputeNodeCacheResult:
    """Per-job hit rates for one buffer-count setting."""

    buffers: int
    job_ids: np.ndarray
    job_hit_rates: np.ndarray
    job_request_counts: np.ndarray
    total_hits: int
    total_requests: int

    @property
    def overall_hit_rate(self) -> float:
        """Hit rate across all read-only reads."""
        return self.total_hits / self.total_requests if self.total_requests else 0.0

    def cdf(self) -> EmpiricalCDF:
        """Figure 8: CDF over jobs of per-job hit rate (percent)."""
        return EmpiricalCDF(self.job_hit_rates * 100.0)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of jobs with hit rate above ``threshold``
        (paper: 40 % of jobs above 0.75)."""
        if len(self.job_hit_rates) == 0:
            return 0.0
        return float(np.mean(self.job_hit_rates > threshold))

    def fraction_zero(self) -> float:
        """Fraction of jobs with a 0 % hit rate (paper: 30 %)."""
        if len(self.job_hit_rates) == 0:
            return 0.0
        return float(np.mean(self.job_hit_rates == 0.0))


def read_only_file_ids(frame: TraceFrame) -> np.ndarray:
    """Files that were read and never written in the trace."""
    read_files = np.unique(frame.reads["file"])
    written = np.unique(frame.writes["file"])
    return read_files[~np.isin(read_files, written)].astype(np.int64)


def simulate_compute_node_caches(
    frame: TraceFrame,
    buffers: int = 1,
    block_size: int = BLOCK_SIZE,
) -> ComputeNodeCacheResult:
    """Run the Figure 8 simulation at one buffer count.

    Jobs with no read-only reads are excluded (they have no cache to
    measure), matching the per-job population of the figure.
    """
    if buffers < 1:
        raise CacheConfigError("need at least one buffer")
    ro = read_only_file_ids(frame)
    reads = frame.reads
    mask = np.isin(reads["file"], ro)
    reads = reads[mask]
    if len(reads) == 0:
        raise CacheConfigError("no read-only reads in trace")

    file_arr = reads["file"].astype(np.int64)
    first_block = (reads["offset"] // block_size).astype(np.int64)
    last_block = (
        np.maximum(reads["offset"] + reads["size"] - 1, reads["offset"]) // block_size
    ).astype(np.int64)
    spans = expand_spans(file_arr, first_block, last_block)
    starts = spans.starts.tolist()
    blocks = spans.block.tolist()
    jobs = reads["job"].astype(np.int64).tolist()
    nodes = reads["node"].astype(np.int64).tolist()
    files = file_arr.tolist()

    caches: dict[tuple[int, int], LRUPolicy] = {}
    hits_by_job: dict[int, int] = {}
    reqs_by_job: dict[int, int] = {}

    for r, (job, node, file) in enumerate(zip(jobs, nodes, files)):
        cache = caches.get((job, node))
        if cache is None:
            cache = LRUPolicy(buffers)
            caches[(job, node)] = cache
        lo, hi = starts[r], starts[r + 1]
        if hi - lo == 1:
            # fast path: the common sub-block request
            key = (file, blocks[lo])
            hit = key in cache
            cache.touch(key)
        else:
            # a request hits only when every block it spans is present
            hit = all((file, blocks[i]) in cache for i in range(lo, hi))
            for i in range(lo, hi):
                cache.touch((file, blocks[i]))
        reqs_by_job[job] = reqs_by_job.get(job, 0) + 1
        if hit:
            hits_by_job[job] = hits_by_job.get(job, 0) + 1

    job_ids = np.asarray(sorted(reqs_by_job), dtype=np.int64)
    counts = np.asarray([reqs_by_job[j] for j in job_ids.tolist()], dtype=np.int64)
    hits = np.asarray([hits_by_job.get(j, 0) for j in job_ids.tolist()], dtype=np.int64)
    if obs.enabled():
        obs.add("caching.compute_node.simulations")
        obs.add("caching.compute_node.requests", int(counts.sum()))
        obs.add("caching.compute_node.hits", int(hits.sum()))
    return ComputeNodeCacheResult(
        buffers=buffers,
        job_ids=job_ids,
        job_hit_rates=hits / counts,
        job_request_counts=counts,
        total_hits=int(hits.sum()),
        total_requests=int(counts.sum()),
    )
