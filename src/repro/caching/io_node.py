"""I/O-node cache simulation: Figure 9.

The I/O-node caches serve *all* compute nodes, all files, and all jobs.
Files are striped round-robin at one-block granularity, so block ``b`` of
any file is served (and cached) by I/O node ``b mod n``.  Compute nodes
send each request directly to the I/O nodes it touches, so a request
decomposes into one *sub-request* per I/O node; consistent with the
paper's hit definition on the compute-node side, a sub-request **hits**
when every block it needs is already in that I/O node's cache.

The reported hit rate is over **read** sub-requests: a buffer cache's
job at the I/O node is to avoid disk *reads*; writes are absorbed
write-behind regardless (they flow through the simulation, populating
and evicting buffers, but are not scored).  Since the read workload is
dominated by requests smaller than one block, a modest cache reaches a
90 % hit rate despite the large cold streams that carry most of the
bytes — the hits come from intrablock runs and from different nodes
touching the same striped block close together in time.

Figure 9's published shape: with LRU, ~4000 4 KB buffers across the
system reach a 90 % hit rate; FIFO needs nearly 20000, because it evicts
hot blocks on arrival schedule rather than on locality.  How the buffers
are spread across 1-20 I/O nodes barely changes the hit rate.

Two engines produce the Figure 9 curves: the per-capacity **replay**
simulator below (the oracle, required for FIFO and the interprocess
policy), and the single-pass **stack-distance** engine in
:mod:`repro.caching.stackdist`, which yields the exact LRU/OPT curve at
every buffer count from one traversal of the trace.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.caching.blockspan import expand_spans
from repro.caching.policies import (
    OptimalPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.caching.results import HitRateCurve
from repro.errors import CacheConfigError
from repro.trace.frame import TraceFrame
from repro.trace.records import EventKind
from repro.util.units import BLOCK_SIZE

#: engines accepted by :func:`sweep_buffer_counts`
ENGINES = ("auto", "replay", "stackdist", "replay-python")


@dataclass(frozen=True)
class IONodeCacheResult:
    """Outcome of one I/O-node cache simulation."""

    policy: str
    n_io_nodes: int
    total_buffers: int
    read_sub_requests: int
    read_hits: int
    all_sub_requests: int
    all_hits: int

    @property
    def hit_rate(self) -> float:
        """Read sub-request hit rate (the Figure 9 metric)."""
        return self.read_hits / self.read_sub_requests if self.read_sub_requests else 0.0

    @property
    def all_traffic_hit_rate(self) -> float:
        """Hit rate over all sub-requests, writes included — a harsher
        view in which cold write streams count as misses."""
        return self.all_hits / self.all_sub_requests if self.all_sub_requests else 0.0


def _nonzero_transfers(frame: TraceFrame) -> np.ndarray:
    """READ/WRITE events with a positive size, in time order."""
    tr = frame.transfers
    if len(tr) == 0:
        raise CacheConfigError("no transfers in trace")
    tr = tr[tr["size"].astype(np.int64) > 0]
    if len(tr) == 0:
        raise CacheConfigError("only zero-size transfers in trace")
    return tr


def _nonzero_transfer_chunks(source) -> np.ndarray:
    """Out-of-core variant of :func:`_nonzero_transfers`: concatenate
    only the (usually sparse) transfer rows of each chunk, never the
    whole event table."""
    parts = []
    saw_transfer = False
    for chunk in source.iter_chunks():
        kind = chunk["kind"]
        tmask = (kind == int(EventKind.READ)) | (kind == int(EventKind.WRITE))
        if tmask.any():
            saw_transfer = True
            keep = chunk[tmask]
            keep = keep[keep["size"].astype(np.int64) > 0]
            if len(keep):
                parts.append(keep)
    if not saw_transfer:
        raise CacheConfigError("no transfers in trace")
    if not parts:
        raise CacheConfigError("only zero-size transfers in trace")
    return np.concatenate(parts)


def request_stream(
    frame, block_size: int = BLOCK_SIZE
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(file, first_block, last_block, node, is_read) per transfer, in
    time order.

    ``frame`` may be a :class:`~repro.trace.frame.TraceFrame` or any
    :class:`~repro.trace.store.TraceSource`; a source is streamed chunk
    by chunk, so only the transfer columns ever occupy memory at once.
    Zero-size transfers are dropped (they touch no blocks).
    """
    if isinstance(frame, TraceFrame):
        tr = _nonzero_transfers(frame)
    else:
        tr = _nonzero_transfer_chunks(frame)
    first = (tr["offset"] // block_size).astype(np.int64)
    last = ((tr["offset"] + tr["size"] - 1) // block_size).astype(np.int64)
    is_read = tr["kind"] == int(EventKind.READ)
    return (
        tr["file"].astype(np.int64),
        first,
        last,
        tr["node"].astype(np.int64),
        is_read,
    )


def request_jobs(frame, block_size: int = BLOCK_SIZE) -> np.ndarray:
    """Job ids aligned with :func:`request_stream`'s transfer filtering."""
    if isinstance(frame, TraceFrame):
        return _nonzero_transfers(frame)["job"].astype(np.int64)
    return _nonzero_transfer_chunks(frame)["job"].astype(np.int64)


def _resolve_stream(
    frame,
    stream: tuple[np.ndarray, ...] | None,
    block_size: int,
) -> tuple[np.ndarray, ...]:
    if stream is not None:
        return stream
    if frame is None:
        raise CacheConfigError("need a frame or a precomputed stream")
    return request_stream(frame, block_size)


def _build_caches(
    policy: str, total_buffers: int, n_io_nodes: int
) -> list[ReplacementPolicy]:
    if total_buffers < 0:
        raise CacheConfigError("total_buffers must be non-negative")
    if n_io_nodes <= 0:
        raise CacheConfigError("need at least one I/O node")
    base, extra = divmod(total_buffers, n_io_nodes)
    return [
        make_policy(policy, base + (1 if i < extra else 0)) for i in range(n_io_nodes)
    ]


def _prime_opt(
    caches: list[ReplacementPolicy],
    files: np.ndarray,
    first: np.ndarray,
    last: np.ndarray,
    n_io_nodes: int,
) -> None:
    """Give each OPT cache its own future block sequence."""
    spans = expand_spans(files, first, last)
    io = spans.io_nodes(n_io_nodes)
    sequences: list[list[tuple[int, int]]] = [[] for _ in range(n_io_nodes)]
    for f, b, node in zip(spans.file.tolist(), spans.block.tolist(), io.tolist()):
        sequences[node].append((f, b))
    for cache, seq in zip(caches, sequences):
        assert isinstance(cache, OptimalPolicy)
        cache.prime(seq)


def simulate_io_node_caches(
    frame,
    total_buffers: int,
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
    stream: tuple[np.ndarray, ...] | None = None,
) -> IONodeCacheResult:
    """Run the Figure 9 replay at one (policy, buffer count) setting.

    ``stream`` lets sweeps reuse one precomputed request stream; when it
    is supplied the ``frame`` may be ``None``.
    """
    stream = _resolve_stream(frame, stream, block_size)
    files, first, last, nodes, is_read = stream
    caches = _build_caches(policy, total_buffers, n_io_nodes)
    if policy.lower() == "opt":
        _prime_opt(caches, files, first, last, n_io_nodes)
    interprocess = policy.lower() == "interprocess"

    spans = expand_spans(files, first, last)
    starts = spans.starts.tolist()
    blocks = spans.block.tolist()
    ios = spans.io_nodes(n_io_nodes).tolist()

    read_subs = read_hits = 0
    all_subs = all_hits = 0
    for r, (f, node, rd) in enumerate(
        zip(files.tolist(), nodes.tolist(), is_read.tolist())
    ):
        lo, hi = starts[r], starts[r + 1]
        if hi - lo == 1:
            # fast path: sub-block request, one I/O node, one block
            cache = caches[ios[lo]]
            key = (f, blocks[lo])
            present = key in cache
            if interprocess:
                cache.access_from(key, node)
            else:
                cache.access(key)
            all_subs += 1
            all_hits += present
            if rd:
                read_subs += 1
                read_hits += present
            continue
        full_hit: dict[int, bool] = {}
        for i in range(lo, hi):
            io = ios[i]
            cache = caches[io]
            key = (f, blocks[i])
            present = key in cache
            full_hit[io] = full_hit.get(io, True) and present
            if interprocess:
                cache.access_from(key, node)
            else:
                cache.access(key)
        n_full = sum(1 for ok in full_hit.values() if ok)
        all_subs += len(full_hit)
        all_hits += n_full
        if rd:
            read_subs += len(full_hit)
            read_hits += n_full
    if obs.enabled():
        obs.add("caching.replay.simulations")
        obs.add("caching.replay.sub_requests", all_subs)
        obs.add("caching.replay.hits", all_hits)
        obs.add(f"caching.replay.{policy.lower()}.read_hits", read_hits)
        obs.add(f"caching.replay.{policy.lower()}.read_sub_requests", read_subs)
    return IONodeCacheResult(
        policy=policy,
        n_io_nodes=n_io_nodes,
        total_buffers=total_buffers,
        read_sub_requests=read_subs,
        read_hits=read_hits,
        all_sub_requests=all_subs,
        all_hits=all_hits,
    )


def sweep_buffer_counts(
    frame,
    buffer_counts: Sequence[int],
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
    engine: str = "auto",
    stream: tuple[np.ndarray, ...] | None = None,
) -> HitRateCurve:
    """One Figure 9 line: hit rate across a range of total buffer counts.

    ``engine`` selects how the curve is computed:

    - ``"replay"`` — one replay per buffer count, vectorized: LRU/OPT
      score every capacity from one numpy depth pass
      (:mod:`repro.caching.replayvec`, bit-identical to the oracle);
      non-stack policies (FIFO, interprocess) fall through to the
      oracle loop;
    - ``"replay-python"`` — the per-block dictionary oracle, always;
    - ``"stackdist"`` — the single-pass stack-distance engine (LRU/OPT
      only; exactly equal to replay at every capacity);
    - ``"auto"`` (default) — stackdist where supported, replay otherwise.
    """
    if engine not in ENGINES:
        raise CacheConfigError(f"unknown engine {engine!r}; choose from {ENGINES}")
    stream = _resolve_stream(frame, stream, block_size)
    use_stackdist = engine == "stackdist" or (
        engine == "auto" and policy.lower() in ("lru", "opt")
    )
    if use_stackdist:
        # imported lazily: stackdist builds on this module's stream/result types
        from repro.caching.stackdist import io_node_stack_profile

        with obs.span("caching/sweep/stackdist"):
            profile = io_node_stack_profile(
                n_io_nodes=n_io_nodes, policy=policy, stream=stream
            )
            return profile.curve(buffer_counts)
    if engine == "replay" and policy.lower() in ("lru", "opt"):
        from repro.caching.replayvec import batch_replay_curve

        with obs.span("caching/sweep/replayvec"):
            return batch_replay_curve(
                stream, buffer_counts, n_io_nodes=n_io_nodes, policy=policy
            )
    rates = []
    with obs.span("caching/sweep/replay"):
        for count in buffer_counts:
            result = simulate_io_node_caches(
                None, count, n_io_nodes=n_io_nodes, policy=policy,
                block_size=block_size, stream=stream,
            )
            rates.append(result.hit_rate)
    return HitRateCurve(
        policy=policy,
        n_io_nodes=n_io_nodes,
        buffer_counts=np.asarray(list(buffer_counts), dtype=np.int64),
        hit_rates=np.asarray(rates),
    )
