"""Disk-time accounting: what the I/O-node cache buys at the disk.

§4.8's argument for I/O-node caching is not the hit rate itself but what
it does to the *disks*: combining "several small requests ... into a few
larger requests that can be more efficiently served by disk hardware",
which matters even more for RAID.  This module replays the trace through
the I/O-node caches and charges the disks only for the misses (reads)
and coalesced write-backs, using the seek/rotate/transfer model of
:class:`repro.machine.disk.Disk` — then compares against a cacheless
system where every request goes straight to a disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caching.blockspan import expand_spans
from repro.caching.io_node import _build_caches, _resolve_stream
from repro.errors import CacheConfigError
from repro.machine.disk import Disk
from repro.trace.frame import TraceFrame
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class DiskTimeResult:
    """Aggregate disk activity for one configuration."""

    n_disk_ops: int
    bytes_moved: int
    busy_seconds: float

    @property
    def mean_op_bytes(self) -> float:
        """Average disk transfer size — the coalescing measure."""
        return self.bytes_moved / self.n_disk_ops if self.n_disk_ops else 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Bytes per busy-second actually delivered by the disks."""
        return self.bytes_moved / self.busy_seconds if self.busy_seconds else 0.0


def simulate_disk_time(
    frame: TraceFrame | None,
    total_buffers: int,
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
    disk: Disk | None = None,
    stream: tuple[np.ndarray, ...] | None = None,
) -> tuple[DiskTimeResult, DiskTimeResult]:
    """(cacheless, cached) disk-time results for the same trace.

    Cacheless: every request's blocks on each I/O node are one disk
    operation.  Cached: only missing blocks reach a disk, and the
    contiguous misses of one request are coalesced into single disk
    operations (the cache's request-combining effect).  Writes are
    write-behind in both systems but uncoalesced without a cache.

    ``stream`` lets callers reuse one precomputed request stream; the
    ``frame`` may then be ``None``.
    """
    if total_buffers < 0:
        raise CacheConfigError("total_buffers must be non-negative")
    files, first, last, nodes, is_read = _resolve_stream(frame, stream, block_size)
    caches = _build_caches(policy, total_buffers, n_io_nodes)

    raw_disk = disk if disk is not None else Disk()
    cached_disk = Disk(
        capacity=raw_disk.capacity, avg_seek=raw_disk.avg_seek,
        rotation_time=raw_disk.rotation_time, transfer_rate=raw_disk.transfer_rate,
    )

    raw_ops = raw_bytes = 0
    raw_busy = 0.0
    raw_last: dict[int, tuple[int, int]] = {}
    cache_ops = cache_bytes = 0
    cache_busy = 0.0
    cache_last: dict[int, tuple[int, int]] = {}

    spans = expand_spans(files, first, last)
    starts = spans.starts.tolist()
    span_blocks = spans.block.tolist()
    span_ios = spans.io_nodes(n_io_nodes).tolist()

    for r, f in enumerate(files.tolist()):
        lo, hi = starts[r], starts[r + 1]
        # --- cacheless system: one disk op per (request, io node) ---
        per_io: dict[int, list[int]] = {}
        for i in range(lo, hi):
            per_io.setdefault(span_ios[i], []).append(span_blocks[i])
        for io, blocks in per_io.items():
            raw_ops += 1
            nbytes = len(blocks) * block_size
            raw_bytes += nbytes
            # on this node's disk, the next physical block after file
            # block b (of the same file) is b + n_io_nodes
            sequential = raw_last.get(io) == (f, blocks[0] - n_io_nodes)
            raw_last[io] = (f, blocks[-1])
            raw_busy += raw_disk.service_time(nbytes, sequential=sequential)

        # --- cached system: only misses, coalesced into runs ---
        miss_runs: dict[int, list[tuple[int, int]]] = {}
        for i in range(lo, hi):
            b = span_blocks[i]
            io = span_ios[i]
            key = (f, b)
            hit = caches[io].access(key)
            if hit:
                continue
            runs = miss_runs.setdefault(io, [])
            if runs and runs[-1][1] == b - n_io_nodes:
                runs[-1] = (runs[-1][0], b)
            else:
                runs.append((b, b))
        for io, runs in miss_runs.items():
            for a, z in runs:
                n_blocks = (z - a) // n_io_nodes + 1
                cache_ops += 1
                nbytes = n_blocks * block_size
                cache_bytes += nbytes
                sequential = cache_last.get(io) == (f, a - n_io_nodes)
                cache_last[io] = (f, z)
                cache_busy += cached_disk.service_time(nbytes, sequential=sequential)

    return (
        DiskTimeResult(n_disk_ops=raw_ops, bytes_moved=raw_bytes, busy_seconds=raw_busy),
        DiskTimeResult(n_disk_ops=cache_ops, bytes_moved=cache_bytes, busy_seconds=cache_busy),
    )
