"""Vectorized request → block expansion shared by the cache simulators.

Every trace-driven simulator in :mod:`repro.caching` decomposes each
transfer into the 4 KB blocks it spans and routes each block to the I/O
node that owns it under round-robin striping.  Doing that with a
per-request ``range(b0, b1 + 1)`` Python loop is the single hottest
pattern in the package, so this module computes the expansion once, in
numpy, as flat parallel arrays:

``request → (file, block, io_node, sub_request_id)``

A :class:`BlockSpans` carries the per-block arrays plus the request
boundaries, so replay simulators can still walk requests in time order
(slicing precomputed arrays instead of re-deriving blocks), while the
single-pass stack-distance engine (:mod:`repro.caching.stackdist`)
consumes the flat arrays directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CacheConfigError


@dataclass(frozen=True)
class SubRequests:
    """The (request × I/O node) decomposition of a block expansion.

    A *sub-request* is the portion of one request served by one I/O
    node; it is the unit over which Figure 9's hit rate is defined (a
    sub-request hits only when every block it needs is present).
    """

    #: per-block index into the sub-request arrays below
    block_sub: np.ndarray
    #: originating request index, per sub-request
    req: np.ndarray
    #: owning I/O node, per sub-request
    io_node: np.ndarray

    def __len__(self) -> int:
        return len(self.req)

    def max_over_blocks(self, values: np.ndarray) -> np.ndarray:
        """Per-sub-request maximum of a per-block array."""
        order = np.argsort(self.block_sub, kind="stable")
        bounds = np.searchsorted(self.block_sub[order], np.arange(len(self.req)))
        return np.maximum.reduceat(values[order], bounds)


@dataclass(frozen=True)
class BlockSpans:
    """Per-block arrays of a request stream, in time order.

    The blocks of request ``r`` occupy ``[starts[r], starts[r + 1])`` in
    the flat arrays, in ascending block order (matching the order the
    replay simulators touch them).
    """

    #: originating request index, per block
    req: np.ndarray
    #: file id, per block
    file: np.ndarray
    #: file block number, per block
    block: np.ndarray
    #: request boundaries, length ``n_requests + 1``
    starts: np.ndarray

    def __len__(self) -> int:
        return len(self.block)

    @property
    def n_requests(self) -> int:
        return len(self.starts) - 1

    def io_nodes(self, n_io_nodes: int) -> np.ndarray:
        """Owning I/O node per block under round-robin striping."""
        if n_io_nodes <= 0:
            raise CacheConfigError("need at least one I/O node")
        return self.block % n_io_nodes

    def sub_requests(self, n_io_nodes: int) -> SubRequests:
        """Group blocks into (request, I/O node) sub-requests."""
        io = self.io_nodes(n_io_nodes)
        key = self.req * np.int64(n_io_nodes) + io
        uniq, inv = np.unique(key, return_inverse=True)
        return SubRequests(
            block_sub=inv.astype(np.int64),
            req=(uniq // n_io_nodes).astype(np.int64),
            io_node=(uniq % n_io_nodes).astype(np.int64),
        )

    def max_over_requests(self, values: np.ndarray) -> np.ndarray:
        """Per-request maximum of a per-block array."""
        return np.maximum.reduceat(values, self.starts[:-1])


def expand_spans(
    files: np.ndarray, first: np.ndarray, last: np.ndarray
) -> BlockSpans:
    """Expand ``(file, first_block, last_block)`` requests into blocks.

    All three inputs are parallel per-request arrays; ``last`` must be
    >= ``first`` elementwise (every request touches at least one block).
    """
    files = np.asarray(files, dtype=np.int64)
    first = np.asarray(first, dtype=np.int64)
    last = np.asarray(last, dtype=np.int64)
    if not (len(files) == len(first) == len(last)):
        raise CacheConfigError("span arrays must be parallel")
    if np.any(last < first):
        raise CacheConfigError("request with last block before first block")
    lens = last - first + 1
    starts = np.zeros(len(files) + 1, dtype=np.int64)
    np.cumsum(lens, out=starts[1:])
    req = np.repeat(np.arange(len(files), dtype=np.int64), lens)
    block = np.arange(starts[-1], dtype=np.int64) - starts[req] + first[req]
    return BlockSpans(req=req, file=files[req], block=block, starts=starts)
