"""Block replacement policies.

All policies manage a fixed number of one-block buffers and expose the
same ``access(key) -> hit`` interface, so the compute-node and I/O-node
simulators can be parameterized by policy.  LRU and FIFO are the paper's
two; OPT (Belady) and an interprocess-aware policy implement its §5 call
for policies that "optimize for interprocess locality rather than
traditional spatial and temporal locality".
"""

from __future__ import annotations

import abc
import heapq
from collections import OrderedDict, deque

from repro.errors import CacheConfigError

Key = tuple[int, int]  # (file, block)


class ReplacementPolicy(abc.ABC):
    """A fixed-capacity block cache with pluggable replacement."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise CacheConfigError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def access(self, key: Key) -> bool:
        """Touch one block; returns True on a hit and updates counters."""
        if self.capacity == 0:
            self.misses += 1
            return False
        hit = self._touch(key)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return hit

    def touch(self, key: Key) -> bool:
        """Touch one block *without* updating hit/miss counters.

        For simulators whose hit definition is coarser than one block
        (e.g. the compute-node simulation, where a hit is a whole request
        satisfied locally) and who therefore keep their own counters.
        """
        if self.capacity == 0:
            return False
        return self._touch(key)

    @abc.abstractmethod
    def _touch(self, key: Key) -> bool:
        """Policy-specific presence check + state update."""

    @abc.abstractmethod
    def __contains__(self, key: Key) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used replacement."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._store: OrderedDict[Key, None] = OrderedDict()

    def _touch(self, key: Key) -> bool:
        if key in self._store:
            self._store.move_to_end(key)
            return True
        self._store[key] = None
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
        return False

    def __contains__(self, key: Key) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out replacement: residency is insertion-ordered and
    hits do not refresh it — which is why FIFO "does not give preference
    to blocks with high locality" and needs ~5× the buffers of LRU for
    the same hit rate in Figure 9."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._store: OrderedDict[Key, None] = OrderedDict()

    def _touch(self, key: Key) -> bool:
        if key in self._store:
            return True
        self._store[key] = None
        if len(self._store) > self.capacity:
            self._store.popitem(last=False)
        return False

    def __contains__(self, key: Key) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)


class OptimalPolicy(ReplacementPolicy):
    """Belady's OPT: evict the block whose next use is farthest away.

    Offline — it must be primed with the whole access sequence via
    :meth:`prime` before replay.  Serves as the upper bound the §5
    policy discussion is aiming toward.

    Implementation: a lazily-validated max-heap of next-use times.  Every
    access records the key's *current* next-use index in ``_cur_next``
    and pushes a matching heap entry; since per-key next-use indices
    strictly increase, a popped entry is valid iff it equals the key's
    current value (stale entries can only be smaller) — so each resident
    key always has exactly one valid entry in the heap.
    """

    INFINITY = 1 << 60

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._uses: dict[Key, deque[int]] = {}
        self._clock = 0
        self._resident: set[Key] = set()
        self._heap: list[tuple[int, Key]] = []  # (-next_use, key)
        self._cur_next: dict[Key, int] = {}
        self._primed = False

    def prime(self, sequence: list[Key]) -> None:
        """Load the future: the exact access sequence to be replayed."""
        self._uses = {}
        for i, key in enumerate(sequence):
            self._uses.setdefault(key, deque()).append(i)
        self._clock = 0
        self._resident = set()
        self._heap = []
        self._cur_next = {}
        self._primed = True

    def _touch(self, key: Key) -> bool:
        if not self._primed:
            raise CacheConfigError("OptimalPolicy.prime() must be called first")
        uses = self._uses.get(key)
        while uses and uses[0] <= self._clock:
            uses.popleft()
        next_use = uses[0] if uses else self.INFINITY
        self._clock += 1

        hit = key in self._resident
        if not hit:
            if len(self._resident) >= self.capacity:
                while True:
                    far, victim = heapq.heappop(self._heap)
                    if victim in self._resident and -far == self._cur_next.get(victim):
                        self._resident.discard(victim)
                        self._cur_next.pop(victim, None)
                        break
            self._resident.add(key)
        self._cur_next[key] = next_use
        heapq.heappush(self._heap, (-next_use, key))
        return hit

    def __contains__(self, key: Key) -> bool:
        return key in self._resident

    def __len__(self) -> int:
        return len(self._resident)


class InterprocessAwarePolicy(ReplacementPolicy):
    """LRU biased toward blocks exhibiting interprocess locality.

    The paper's I/O-node hits come mostly from *different* compute nodes
    touching the same block soon after each other.  This policy tracks
    how many distinct nodes have touched each resident block and, on
    eviction, discards from the blocks with the fewest distinct users
    (ties broken by recency).  Callers should use :meth:`access_from`
    so the node identity is known; plain :meth:`access` treats all
    traffic as one node (degenerating to LRU).
    """

    def __init__(self, capacity: int, node_memory: int = 4) -> None:
        super().__init__(capacity)
        if node_memory < 1:
            raise CacheConfigError("node_memory must be >= 1")
        self._store: OrderedDict[Key, set[int]] = OrderedDict()
        self.node_memory = node_memory

    def access_from(self, key: Key, node: int) -> bool:
        """Access with the requesting node's identity."""
        self._current_node = node
        return self.access(key)

    def _touch(self, key: Key) -> bool:
        node = getattr(self, "_current_node", 0)
        if key in self._store:
            users = self._store[key]
            users.add(node)
            if len(users) > self.node_memory:
                users.pop()
            self._store.move_to_end(key)
            return True
        self._store[key] = {node}
        if len(self._store) > self.capacity:
            self._evict()
        return False

    def _evict(self) -> None:
        # scan the least-recent quarter of the cache for the block with
        # the fewest distinct users; bounded scan keeps this O(capacity/4)
        scan = max(2, len(self._store) // 4)
        victim = None
        victim_users = 1 << 30
        for i, (key, users) in enumerate(self._store.items()):
            if i >= scan:
                break
            if len(users) < victim_users:
                victim, victim_users = key, len(users)
                if victim_users == 1:
                    break
        if victim is None:  # pragma: no cover - defensive
            victim = next(iter(self._store))
        del self._store[victim]

    def __contains__(self, key: Key) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)


#: registry for CLI/bench parameterization
POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "opt": OptimalPolicy,
    "interprocess": InterprocessAwarePolicy,
}


def make_policy(name: str, capacity: int) -> ReplacementPolicy:
    """Instantiate a policy by registry name."""
    try:
        cls = POLICIES[name.lower()]
    except KeyError:
        raise CacheConfigError(
            f"unknown policy {name!r}; choose from {sorted(POLICIES)}"
        ) from None
    return cls(capacity)
