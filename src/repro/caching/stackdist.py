"""Single-pass stack-distance cache analysis: exact curves at all capacities.

The replay simulators in :mod:`repro.caching.io_node` and
:mod:`repro.caching.compute_node` answer "what is the hit rate at *one*
cache size" by replaying the whole trace; sweeping Figure 8/9 over a
grid of buffer counts replays the trace once per point.  This module
answers the same question for **every** capacity simultaneously from one
traversal, using the classic stack-distance observation (Mattson et al.
1970): for a *stack algorithm*, the capacity-``C`` cache always holds
the top ``C`` entries of a single priority stack, so an access hits at
capacity ``C`` iff its stack depth is <= ``C``.

- **LRU** depths are computed with the Bennett–Kruskal counting method,
  vectorized: the depth of an access at position ``i`` with previous use
  at ``p`` is ``i - p - D(i)`` where ``D(i)`` counts earlier accesses
  whose own previous use lies after ``p`` — an inversion-style count
  done with a bottom-up, numpy-vectorized merge (no per-access Python).
- **OPT** (Belady) depths come from the Mattson priority stack with
  "sooner next use wins" percolation, primed with vectorized
  next-occurrence indices.  OPT is a stack algorithm under this
  priority, and ties (blocks never referenced again) are interchangeable,
  so the depths reproduce :class:`repro.caching.policies.OptimalPolicy`
  replay bit-for-bit at every capacity.
- **FIFO** and the interprocess-aware policy are *not* stack algorithms
  (FIFO famously violates inclusion — Belady's anomaly), so the replay
  simulator remains the oracle for them.

The profiles returned here reproduce the replay simulators' results
*exactly* — same integer hit/request counts, hence bit-identical hit
rates — which the property-based tests in
``tests/test_caching_stackdist.py`` enforce on random traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.caching.blockspan import expand_spans
from repro.caching.compute_node import ComputeNodeCacheResult, read_only_file_ids
from repro.caching.io_node import IONodeCacheResult, request_stream
from repro.caching.results import HitRateCurve
from repro.errors import CacheConfigError
from repro.trace.frame import TraceFrame
from repro.util.units import BLOCK_SIZE

#: sentinel depth for cold (first-touch) accesses: misses at any capacity
COLD = np.iinfo(np.int64).max

#: policies whose curves the stack-distance engine can produce exactly
STACKDIST_POLICIES = ("lru", "opt")


# -- occurrence indexing -----------------------------------------------------


def _prev_occurrences(ids: np.ndarray) -> np.ndarray:
    """Index of the previous access to the same id, or -1 for first touch."""
    n = len(ids)
    prev = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return prev
    order = np.argsort(ids, kind="stable")
    srt = ids[order]
    same = srt[1:] == srt[:-1]
    prev[order[1:][same]] = order[:-1][same]
    return prev


def _next_occurrences(ids: np.ndarray) -> np.ndarray:
    """Index of the next access to the same id, or COLD for last touch."""
    n = len(ids)
    nxt = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return nxt
    order = np.argsort(ids, kind="stable")
    srt = ids[order]
    same = srt[1:] == srt[:-1]
    nxt[order[:-1][same]] = order[1:][same]
    return nxt


def _encode_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Injective int64 encoding of (a, b) pairs.

    Fast path: plain ``a * (max(b) + 1) + b`` when the product cannot
    overflow; falls back to factorizing both columns otherwise.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if len(a) == 0:
        return np.zeros(0, dtype=np.int64)
    a_min, a_max = int(a.min()), int(a.max())
    b_min, b_max = int(b.min()), int(b.max())
    if a_min >= 0 and b_min >= 0 and (a_max + 1) * (b_max + 1) < (1 << 62):
        return a * np.int64(b_max + 1) + b
    _, ia = np.unique(a, return_inverse=True)
    ub, ib = np.unique(b, return_inverse=True)
    return ia.astype(np.int64) * np.int64(len(ub)) + ib.astype(np.int64)


# -- LRU: vectorized Bennett–Kruskal distances -------------------------------


#: bootstrap block width for :func:`_count_prev_greater_before`: pairs
#: inside blocks this wide are counted by one O(w^2) broadcast compare,
#: replacing the five cheapest (and proportionally most overhead-heavy)
#: merge levels
_BOOT = 32


def _count_prev_greater_before(prev: np.ndarray) -> np.ndarray:
    """``res[i] = #{q < i : prev[q] > prev[i]}`` by vectorized merge.

    A bottom-up merge sort where, at the level two blocks meet, each
    right-block element counts the left-block elements greater than it
    (a searchsorted against the already-sorted left block).  Each q < i
    pair is counted exactly once, at the level where their blocks merge.
    All per-level work is whole-array numpy; Python touches only the
    ``log2(n)`` levels.

    Two constant-factor refinements matter at trace scale: the bottom
    ``log2(_BOOT)`` levels are folded into a single broadcast compare
    over ``_BOOT``-wide blocks, and each merge level places both sorted
    halves directly (one searchsorted; the left half lands on the
    complement slots) instead of re-sorting the merged block.
    """
    n = len(prev)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    size = 1 << max(_BOOT.bit_length() - 1, (n - 1).bit_length())
    vals = np.full(size, -2, dtype=np.int64)  # padding never counts as greater
    vals[:n] = prev

    # bootstrap: count every q < i pair inside each _BOOT-wide block with
    # one strictly-lower-triangle broadcast compare, then sort the blocks
    nb = size // _BOOT
    blocks = vals.reshape(nb, _BOOT)
    before = np.tril(np.ones((_BOOT, _BOOT), dtype=bool), -1)  # [i, q] = q < i
    res = np.sum(
        blocks[:, None, :] > blocks[:, :, None],
        axis=2,
        where=before[None],
        dtype=np.int64,
    ).ravel()
    order = np.argsort(blocks, axis=1, kind="stable")
    idx = (order + np.arange(nb, dtype=np.int64)[:, None] * _BOOT).ravel()
    vals = np.take_along_axis(blocks, order, axis=1).ravel()

    big = np.int64(size + 4)  # row offset keeping the flattened rows sorted
    new_vals = np.empty(size, dtype=np.int64)
    new_idx = np.empty(size, dtype=np.int64)
    taken = np.empty(size, dtype=bool)
    width = _BOOT
    while width < size:
        nb = size // (2 * width)
        shape = (nb, 2 * width)
        rows_col = np.arange(nb, dtype=np.int64)[:, None]
        left = vals.reshape(shape)[:, :width]
        right = vals.reshape(shape)[:, width:]
        # broadcasting the row offset onto the halves yields contiguous
        # copies whose concatenation is sorted row over row
        left_flat = (left + rows_col * big).ravel()
        right_flat = (right + rows_col * big).ravel()
        rows = np.repeat(np.arange(nb, dtype=np.int64), width)
        # per right element: # of left-half elements <= it
        le = np.searchsorted(left_flat, right_flat, side="right")
        le -= rows * width
        right_i = idx.reshape(shape)[:, width:].ravel()
        res[right_i] += width - le
        # merge by direct placement: each right element lands le slots
        # deep into its output row; the left half fills the complement
        # slots in order (both halves are sorted, so order is preserved)
        right_dest = rows * (2 * width) + np.tile(
            np.arange(width, dtype=np.int64), nb
        )
        right_dest += le
        taken[:] = False
        taken[right_dest] = True
        left_dest = np.flatnonzero(~taken)
        new_vals[right_dest] = right.ravel()
        new_vals[left_dest] = left.ravel()
        new_idx[right_dest] = right_i
        new_idx[left_dest] = idx.reshape(shape)[:, :width].ravel()
        vals, new_vals = new_vals, vals
        idx, new_idx = new_idx, idx
        width *= 2
    out = np.empty(n, dtype=np.int64)
    out[:] = res[:n]
    return out


def lru_depths(cache_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Per-access LRU stack depth (1-based); :data:`COLD` on first touch.

    ``cache_ids`` partitions the accesses into independent caches (an
    access only competes with accesses to the same cache); ``keys``
    identify blocks within a cache.  An access with depth ``d`` hits any
    LRU cache of capacity >= ``d`` — the LRU inclusion property.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(cache_ids, kind="stable")  # time order kept per cache
    combined = _encode_pairs(np.asarray(cache_ids)[order], np.asarray(keys)[order])
    prev = _prev_occurrences(combined)
    # distinct keys touched since the previous use: window size minus
    # repeats, where a repeat is a q in the window whose own previous use
    # is also in the window (equivalently prev[q] > prev[i])
    depth = np.arange(n, dtype=np.int64) - prev - _count_prev_greater_before(prev)
    depth[prev < 0] = COLD
    out = np.empty(n, dtype=np.int64)
    out[order] = depth
    return out


# -- OPT: Mattson priority stack ---------------------------------------------


def opt_depths(cache_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Per-access OPT (Belady) stack depth; :data:`COLD` on first touch.

    Maintains, per cache, the Mattson priority stack for the MIN policy:
    on each access the referenced block takes the top and the displaced
    blocks percolate down, the block with the *sooner next use* winning
    each level.  The top ``C`` entries are exactly the contents of a
    capacity-``C`` Belady cache, so depth <= C  ⇔  replay hit.
    """
    n = len(keys)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(cache_ids, kind="stable")
    cache_srt = np.asarray(cache_ids)[order]
    combined = _encode_pairs(cache_srt, np.asarray(keys)[order])
    nxt = _next_occurrences(combined)
    bounds = np.flatnonzero(cache_srt[1:] != cache_srt[:-1]) + 1
    segments = np.concatenate(([0], bounds, [n]))
    depth = np.empty(n, dtype=np.int64)
    ids = combined.tolist()
    nxts = nxt.tolist()
    for lo, hi in zip(segments[:-1].tolist(), segments[1:].tolist()):
        _opt_segment(ids, nxts, lo, hi, depth)
    out = np.empty(n, dtype=np.int64)
    out[order] = depth
    return out


def _opt_segment(
    ids: list, nxts: list, lo: int, hi: int, depth: np.ndarray
) -> None:
    """Run the OPT priority stack over one cache's access slice."""
    stack_key: list = []   # level 0 = top of stack
    stack_next: list = []  # current next-use time of each resident
    level: dict = {}
    for i in range(lo, hi):
        k = ids[i]
        nx = nxts[i]
        lvl = level.get(k)
        if lvl is None:
            depth[i] = COLD
            d = len(stack_key)
        else:
            depth[i] = lvl + 1
            d = lvl
        if d == 0:
            if lvl is None:  # miss into an empty stack
                stack_key.append(k)
                stack_next.append(nx)
                level[k] = 0
            else:            # hit at the top: refresh the priority
                stack_next[0] = nx
            continue
        # k takes the top; the old top percolates down, winning each
        # level contest when its next use is sooner than the incumbent's
        ck, cn = stack_key[0], stack_next[0]
        stack_key[0], stack_next[0] = k, nx
        level[k] = 0
        for j in range(1, d):
            ik, inn = stack_key[j], stack_next[j]
            if cn < inn:
                stack_key[j], stack_next[j] = ck, cn
                level[ck] = j
                ck, cn = ik, inn
        if lvl is None:
            stack_key.append(ck)
            stack_next.append(cn)
        else:
            stack_key[d], stack_next[d] = ck, cn
        level[ck] = d


def _depths_for_policy(
    policy: str, cache_ids: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    name = policy.lower()
    if name == "lru":
        return lru_depths(cache_ids, keys)
    if name == "opt":
        return opt_depths(cache_ids, keys)
    raise CacheConfigError(
        f"stack-distance engine supports {STACKDIST_POLICIES}, not {policy!r}; "
        "use the replay engine for FIFO/interprocess (they are not stack "
        "algorithms)"
    )


# -- I/O-node profile (Figure 9 at all capacities) ---------------------------


@dataclass(frozen=True)
class IONodeStackProfile:
    """One-pass summary yielding exact Figure 9 results at any capacity.

    Per I/O node, holds the sorted minimum capacity (max stack depth over
    the sub-request's blocks) at which each sub-request becomes a full
    hit; a replay at ``total_buffers`` is then a pair of binary searches
    per node.
    """

    policy: str
    n_io_nodes: int
    #: per node: sorted min-capacity of each *read* sub-request
    read_depths: tuple[np.ndarray, ...]
    #: per node: sorted min-capacity of each sub-request (reads + writes)
    all_depths: tuple[np.ndarray, ...]

    @property
    def read_sub_requests(self) -> int:
        return int(sum(len(d) for d in self.read_depths))

    @property
    def all_sub_requests(self) -> int:
        return int(sum(len(d) for d in self.all_depths))

    def result_at(self, total_buffers: int) -> IONodeCacheResult:
        """The exact :func:`simulate_io_node_caches` result at one size."""
        if total_buffers < 0:
            raise CacheConfigError("total_buffers must be non-negative")
        base, extra = divmod(int(total_buffers), self.n_io_nodes)
        read_hits = all_hits = 0
        for node in range(self.n_io_nodes):
            cap = base + (1 if node < extra else 0)
            read_hits += int(np.searchsorted(self.read_depths[node], cap, side="right"))
            all_hits += int(np.searchsorted(self.all_depths[node], cap, side="right"))
        return IONodeCacheResult(
            policy=self.policy,
            n_io_nodes=self.n_io_nodes,
            total_buffers=int(total_buffers),
            read_sub_requests=self.read_sub_requests,
            read_hits=read_hits,
            all_sub_requests=self.all_sub_requests,
            all_hits=all_hits,
        )

    def curve(self, buffer_counts) -> HitRateCurve:
        """The exact Figure 9 line over any grid of buffer counts."""
        rates = [self.result_at(count).hit_rate for count in buffer_counts]
        return HitRateCurve(
            policy=self.policy,
            n_io_nodes=self.n_io_nodes,
            buffer_counts=np.asarray(list(buffer_counts), dtype=np.int64),
            hit_rates=np.asarray(rates),
        )


def io_node_stack_profile(
    frame=None,
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
    stream: tuple[np.ndarray, ...] | None = None,
) -> IONodeStackProfile:
    """One pass over the trace → Figure 9 at every buffer count.

    ``stream`` (from :func:`repro.caching.io_node.request_stream`) lets
    callers reuse a precomputed request stream; otherwise it is derived
    from ``frame``.
    """
    if stream is None:
        if frame is None:
            raise CacheConfigError("need a frame or a precomputed stream")
        stream = request_stream(frame, block_size)
    if n_io_nodes <= 0:
        raise CacheConfigError("need at least one I/O node")
    files, first, last, _nodes, is_read = stream
    with obs.span("caching/stackdist/io_node_profile"):
        spans = expand_spans(files, first, last)
        io = spans.io_nodes(n_io_nodes)
        depths = _depths_for_policy(policy, io, _encode_pairs(spans.file, spans.block))
        subs = spans.sub_requests(n_io_nodes)
        # a sub-request becomes a full hit once every block it spans is
        # resident: min sufficient capacity = max depth over its blocks
        min_caps = subs.max_over_blocks(depths)
        sub_read = np.asarray(is_read, dtype=bool)[subs.req]
        read_depths = []
        all_depths = []
        for node in range(n_io_nodes):
            on_node = subs.io_node == node
            read_depths.append(np.sort(min_caps[on_node & sub_read]))
            all_depths.append(np.sort(min_caps[on_node]))
        if obs.enabled():
            obs.add("caching.stackdist.passes")
            obs.add("caching.stackdist.block_accesses", len(depths))
            obs.add("caching.stackdist.cold_accesses", int((depths == COLD).sum()))
            obs.add(f"caching.stackdist.{policy.lower()}.passes")
            obs.hist_many(
                "caching.stackdist.depth_blocks", depths[depths != COLD]
            )
    return IONodeStackProfile(
        policy=policy.lower(),
        n_io_nodes=n_io_nodes,
        read_depths=tuple(read_depths),
        all_depths=tuple(all_depths),
    )


# -- compute-node profile (Figure 8 at all capacities) -----------------------


@dataclass(frozen=True)
class ComputeNodeStackProfile:
    """One-pass summary yielding exact Figure 8 results at any capacity."""

    #: sorted job ids with at least one read-only read
    job_ids: np.ndarray
    #: per job (aligned with job_ids): request count
    job_request_counts: np.ndarray
    #: per job: sorted min-capacity of each request
    job_depths: tuple[np.ndarray, ...]

    def result_at(self, buffers: int = 1) -> ComputeNodeCacheResult:
        """The exact :func:`simulate_compute_node_caches` result."""
        if buffers < 1:
            raise CacheConfigError("need at least one buffer")
        hits = np.asarray(
            [int(np.searchsorted(d, buffers, side="right")) for d in self.job_depths],
            dtype=np.int64,
        )
        return ComputeNodeCacheResult(
            buffers=buffers,
            job_ids=self.job_ids,
            job_hit_rates=hits / self.job_request_counts,
            job_request_counts=self.job_request_counts,
            total_hits=int(hits.sum()),
            total_requests=int(self.job_request_counts.sum()),
        )

    def sweep(self, buffer_counts) -> list[ComputeNodeCacheResult]:
        """Figure 8 at every requested buffer count, from the one pass."""
        return [self.result_at(int(b)) for b in buffer_counts]


def compute_node_stack_profile(
    frame: TraceFrame, block_size: int = BLOCK_SIZE
) -> ComputeNodeStackProfile:
    """One pass over the read-only reads → Figure 8 at every buffer count."""
    ro = read_only_file_ids(frame)
    reads = frame.reads
    reads = reads[np.isin(reads["file"], ro)]
    if len(reads) == 0:
        raise CacheConfigError("no read-only reads in trace")
    if obs.enabled():
        obs.add("caching.stackdist.passes")
        obs.add("caching.stackdist.compute_node_reads", len(reads))
    files = reads["file"].astype(np.int64)
    offsets = reads["offset"].astype(np.int64)
    sizes = reads["size"].astype(np.int64)
    first = offsets // block_size
    last = np.maximum(offsets + sizes - 1, offsets) // block_size
    spans = expand_spans(files, first, last)
    jobs = reads["job"].astype(np.int64)
    nodes = reads["node"].astype(np.int64)
    # one private LRU cache per (job, node); keys are (file, block)
    cache_ids = _encode_pairs(jobs, nodes)[spans.req]
    depths = lru_depths(cache_ids, _encode_pairs(spans.file, spans.block))
    min_caps = spans.max_over_requests(depths)
    order = np.lexsort((min_caps, jobs))
    jobs_sorted = jobs[order]
    caps_sorted = min_caps[order]
    job_ids, starts, counts = np.unique(
        jobs_sorted, return_index=True, return_counts=True
    )
    job_depths = tuple(
        caps_sorted[lo : lo + cnt] for lo, cnt in zip(starts.tolist(), counts.tolist())
    )
    return ComputeNodeStackProfile(
        job_ids=job_ids.astype(np.int64),
        job_request_counts=counts.astype(np.int64),
        job_depths=job_depths,
    )
