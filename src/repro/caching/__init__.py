"""Trace-driven cache simulation: §4.8, Figures 8 and 9.

The paper evaluates buffer caches at both ends of the I/O path:

- **compute-node caches** (Figure 8) — small per-node caches of 4 KB
  read-only buffers with LRU replacement; a hit is a read fully satisfied
  locally.  The result is trimodal: a cache either works (>75 % hit rate,
  spatial locality from small sequential requests) or it doesn't (0 %),
  and one buffer is about as good as fifty — there is spatial but little
  temporal locality;
- **I/O-node caches** (Figure 9) — caches at the 10 I/O nodes serving all
  jobs, with LRU or FIFO replacement over round-robin-striped blocks.
  LRU reaches ~90 % with a few thousand buffers; FIFO needs ~5× more —
  and the hits come mostly from *interprocess* spatial locality, as the
  combined experiment (§4.8) shows: adding compute-node caches barely
  dents the I/O-node hit rate.

:mod:`repro.caching.policies` also carries two policies beyond the paper
(Belady's OPT and an interprocess-locality-aware policy) as the §5
"replacement policies other than LRU or FIFO should be developed"
extension.
"""

from repro.caching.blockspan import BlockSpans, SubRequests, expand_spans
from repro.caching.compute_node import (
    ComputeNodeCacheResult,
    simulate_compute_node_caches,
)
from repro.caching.diskdirected import (
    DiskDirectedComparison,
    compare_interfaces,
    simulate_disk_directed,
)
from repro.caching.disktime import DiskTimeResult, simulate_disk_time
from repro.caching.combined import CombinedResult, simulate_combined
from repro.caching.latency import (
    LatencyComparison,
    LatencyResult,
    compare_latency,
    simulate_request_latency,
)
from repro.caching.io_node import IONodeCacheResult, simulate_io_node_caches, sweep_buffer_counts
from repro.caching.prefetch import (
    PrefetchResult,
    prefetch_benefit,
    simulate_io_node_prefetch,
)
from repro.caching.policies import (
    FIFOPolicy,
    InterprocessAwarePolicy,
    LRUPolicy,
    OptimalPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.caching.results import HitRateCurve
from repro.caching.stackdist import (
    STACKDIST_POLICIES,
    ComputeNodeStackProfile,
    IONodeStackProfile,
    compute_node_stack_profile,
    io_node_stack_profile,
    lru_depths,
    opt_depths,
)
from repro.caching.sweeps import SweepLine, sweep_lines
from repro.caching.writeback import (
    WritebackResult,
    compare_write_policies,
    simulate_writeback,
)

__all__ = [
    "BlockSpans",
    "CombinedResult",
    "ComputeNodeCacheResult",
    "ComputeNodeStackProfile",
    "IONodeStackProfile",
    "STACKDIST_POLICIES",
    "SubRequests",
    "SweepLine",
    "compute_node_stack_profile",
    "expand_spans",
    "io_node_stack_profile",
    "lru_depths",
    "opt_depths",
    "sweep_lines",
    "DiskDirectedComparison",
    "DiskTimeResult",
    "compare_interfaces",
    "simulate_disk_directed",
    "FIFOPolicy",
    "HitRateCurve",
    "LatencyComparison",
    "LatencyResult",
    "compare_latency",
    "simulate_request_latency",
    "InterprocessAwarePolicy",
    "IONodeCacheResult",
    "LRUPolicy",
    "OptimalPolicy",
    "PrefetchResult",
    "ReplacementPolicy",
    "make_policy",
    "prefetch_benefit",
    "simulate_disk_time",
    "simulate_io_node_prefetch",
    "simulate_combined",
    "simulate_compute_node_caches",
    "simulate_io_node_caches",
    "simulate_writeback",
    "compare_write_policies",
    "sweep_buffer_counts",
    "WritebackResult",
]
