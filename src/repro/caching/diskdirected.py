"""Disk-directed (collective) I/O — the paper's final recommendation.

§5's last word: "For some applications, collective I/O requests can lead
to even better performance", citing Kotz's disk-directed I/O.  The idea:
instead of each compute node dribbling its own requests at the I/O
nodes, the *collective* request (every node's part of a file region) is
handed to the I/O nodes, and each I/O node reads its share of the
region's blocks in one sequential sweep of its disk.

This module measures that potential on a trace: for each file, the union
of extents actually transferred is computed, each I/O node's share of
those blocks is coalesced into sequential disk sweeps, and the resulting
disk time is compared against the per-request accounting of
:mod:`repro.caching.disktime`.  The result is an upper bound — it
assumes perfect collectivity per file — which is exactly the right
framing for an interface recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caching.disktime import DiskTimeResult, simulate_disk_time
from repro.errors import CacheConfigError
from repro.machine.disk import Disk
from repro.trace.frame import TraceFrame
from repro.trace.records import EventKind
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class DiskDirectedComparison:
    """Per-request vs disk-directed disk activity for one trace."""

    per_request: DiskTimeResult
    cached: DiskTimeResult
    disk_directed: DiskTimeResult

    @property
    def speedup_vs_per_request(self) -> float:
        """Disk-busy-time ratio: naive per-request / disk-directed."""
        if self.disk_directed.busy_seconds == 0:
            return float("inf")
        return self.per_request.busy_seconds / self.disk_directed.busy_seconds

    @property
    def speedup_vs_cached(self) -> float:
        """Disk-busy-time ratio: cached / disk-directed."""
        if self.disk_directed.busy_seconds == 0:
            return float("inf")
        return self.cached.busy_seconds / self.disk_directed.busy_seconds


def _union_blocks(offsets: np.ndarray, sizes: np.ndarray, block_size: int) -> np.ndarray:
    """Distinct block indices covered by a set of extents."""
    first = (offsets // block_size).astype(np.int64)
    last = ((offsets + sizes - 1) // block_size).astype(np.int64)
    counts = last - first + 1
    total = int(counts.sum())
    row_starts = np.cumsum(counts) - counts
    idx = np.arange(total, dtype=np.int64) - np.repeat(row_starts, counts)
    blocks = np.repeat(first, counts) + idx
    return np.unique(blocks)


def simulate_disk_directed(
    frame: TraceFrame,
    n_io_nodes: int = 10,
    block_size: int = BLOCK_SIZE,
    disk: Disk | None = None,
) -> DiskTimeResult:
    """Disk time if every file's traffic were one collective operation.

    Per (file, direction): the union of transferred blocks is split by
    striping across the I/O nodes; each node services its blocks as
    maximal sequential sweeps (runs of its consecutive disk blocks, i.e.
    file blocks ``n_io_nodes`` apart).
    """
    if n_io_nodes <= 0:
        raise CacheConfigError("need at least one I/O node")
    d = disk if disk is not None else Disk()
    tr = frame.transfers
    if len(tr) == 0:
        raise CacheConfigError("no transfers in trace")

    ops = 0
    nbytes_total = 0
    busy = 0.0
    # deterministic file order; direction split keeps read/write sweeps apart
    for kind in (int(EventKind.READ), int(EventKind.WRITE)):
        sub = tr[tr["kind"] == kind]
        if len(sub) == 0:
            continue
        order = np.argsort(sub["file"], kind="stable")
        sub = sub[order]
        boundaries = np.nonzero(sub["file"][1:] != sub["file"][:-1])[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sub)]))
        for a, b in zip(starts.tolist(), ends.tolist()):
            offsets = sub["offset"][a:b].astype(np.int64)
            sizes = sub["size"][a:b].astype(np.int64)
            keep = sizes > 0
            if not keep.any():
                continue
            blocks = _union_blocks(offsets[keep], sizes[keep], block_size)
            for io in range(n_io_nodes):
                mine = blocks[blocks % n_io_nodes == io]
                if len(mine) == 0:
                    continue
                # sweeps: runs of consecutive owned blocks (step n_io_nodes)
                run_breaks = np.nonzero(np.diff(mine) != n_io_nodes)[0] + 1
                run_starts = np.concatenate(([0], run_breaks))
                run_ends = np.concatenate((run_breaks, [len(mine)]))
                for ra, rb in zip(run_starts.tolist(), run_ends.tolist()):
                    run_blocks = rb - ra
                    nbytes = run_blocks * block_size
                    ops += 1
                    nbytes_total += nbytes
                    # first sweep of a region pays positioning; subsequent
                    # sweeps of the same file on this disk seek again
                    busy += d.service_time(nbytes, sequential=False)
    return DiskTimeResult(n_disk_ops=ops, bytes_moved=nbytes_total, busy_seconds=busy)


def compare_interfaces(
    frame: TraceFrame,
    cache_buffers: int = 500,
    n_io_nodes: int = 10,
    block_size: int = BLOCK_SIZE,
) -> DiskDirectedComparison:
    """Three-way §5 comparison: per-request, cached, disk-directed."""
    per_request, cached = simulate_disk_time(
        frame, cache_buffers, n_io_nodes=n_io_nodes, block_size=block_size
    )
    directed = simulate_disk_directed(
        frame, n_io_nodes=n_io_nodes, block_size=block_size
    )
    return DiskDirectedComparison(
        per_request=per_request, cached=cached, disk_directed=directed
    )
