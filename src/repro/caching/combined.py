"""The §4.8 combined experiment: compute-node + I/O-node caches together.

The paper's final test: put a single one-block buffer at each compute
node *in front of* 10 I/O nodes with 50 buffers each, and ask how much
the compute-node layer steals from the I/O-node layer.  Answer: only a
~3 % reduction in the I/O-node hit rate — which means the I/O-node hits
were mostly *interprocess* (different nodes reusing each other's blocks),
a kind of locality a per-node cache cannot capture by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caching.compute_node import read_only_file_ids
from repro.caching.io_node import _build_caches
from repro.caching.policies import LRUPolicy, ReplacementPolicy
from repro.errors import CacheConfigError
from repro.trace.frame import TraceFrame
from repro.trace.records import EventKind
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class CombinedResult:
    """I/O-node hit rates with and without the compute-node layer."""

    io_hit_rate_without: float
    io_hit_rate_with: float
    compute_hit_rate: float
    requests_absorbed: int
    sub_requests_without: int
    sub_requests_with: int

    @property
    def io_hit_rate_reduction(self) -> float:
        """Absolute drop in I/O-node hit rate caused by the compute layer
        (paper: about 3 percentage points)."""
        return self.io_hit_rate_without - self.io_hit_rate_with


def _serve(
    caches: list[ReplacementPolicy], n_io: int, file: int, b0: int, b1: int
) -> tuple[int, int]:
    """Send one request to the I/O nodes; returns (sub_requests, hits).

    Writes also pass through here (populating buffers), but the caller
    only scores the read traffic, matching the Figure 9 metric."""
    if b0 == b1:
        cache = caches[b0 % n_io]
        key = (file, b0)
        present = key in cache
        cache.access(key)
        return 1, 1 if present else 0
    full: dict[int, bool] = {}
    for b in range(b0, b1 + 1):
        io = b % n_io
        cache = caches[io]
        key = (file, b)
        full[io] = full.get(io, True) and key in cache
        cache.access(key)
    return len(full), sum(1 for v in full.values() if v)


def simulate_combined(
    frame: TraceFrame,
    compute_buffers: int = 1,
    io_buffers_per_node: int = 50,
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
) -> CombinedResult:
    """Run both cache layers over the trace, with and without filtering.

    Reads of read-only files pass through the issuing node's compute
    cache first; a fully-satisfied request is absorbed and never reaches
    the I/O nodes.  Everything else (writes, reads of writable files, and
    partially-missed reads) goes to the I/O nodes in full, as CFS would
    send it.
    """
    if compute_buffers < 1:
        raise CacheConfigError("need at least one compute-node buffer")
    ro = set(read_only_file_ids(frame).tolist())
    tr = frame.transfers
    if len(tr) == 0:
        raise CacheConfigError("no transfers in trace")

    io_with = _build_caches(policy, io_buffers_per_node * n_io_nodes, n_io_nodes)
    io_without = _build_caches(policy, io_buffers_per_node * n_io_nodes, n_io_nodes)
    compute: dict[tuple[int, int], LRUPolicy] = {}

    read_kind = int(EventKind.READ)
    kinds = tr["kind"].tolist()
    jobs = tr["job"].astype(np.int64).tolist()
    nodes = tr["node"].astype(np.int64).tolist()
    files = tr["file"].astype(np.int64).tolist()
    offs = tr["offset"].astype(np.int64).tolist()
    sizes = tr["size"].astype(np.int64).tolist()

    io_hits_with = io_hits_without = 0
    io_sub_with = io_sub_without = 0
    comp_hits = comp_reqs = 0
    absorbed = 0

    for kind, job, node, file, off, size in zip(kinds, jobs, nodes, files, offs, sizes):
        if size <= 0:
            continue
        b0 = off // block_size
        b1 = (off + size - 1) // block_size
        # the unfiltered baseline sees every request
        subs, hits = _serve(io_without, n_io_nodes, file, b0, b1)
        if kind == read_kind:
            io_sub_without += subs
            io_hits_without += hits
        forwarded = True
        if kind == read_kind and file in ro:
            cache = compute.get((job, node))
            if cache is None:
                cache = LRUPolicy(compute_buffers)
                compute[(job, node)] = cache
            hit = all((file, b) in cache for b in range(b0, b1 + 1))
            for b in range(b0, b1 + 1):
                cache.touch((file, b))
            comp_reqs += 1
            if hit:
                comp_hits += 1
                absorbed += 1
                forwarded = False
        if forwarded:
            subs, hits = _serve(io_with, n_io_nodes, file, b0, b1)
            if kind == read_kind:
                io_sub_with += subs
                io_hits_with += hits

    return CombinedResult(
        io_hit_rate_without=io_hits_without / io_sub_without if io_sub_without else 0.0,
        io_hit_rate_with=io_hits_with / io_sub_with if io_sub_with else 0.0,
        compute_hit_rate=comp_hits / comp_reqs if comp_reqs else 0.0,
        requests_absorbed=absorbed,
        sub_requests_without=io_sub_without,
        sub_requests_with=io_sub_with,
    )
