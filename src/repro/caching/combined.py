"""The §4.8 combined experiment: compute-node + I/O-node caches together.

The paper's final test: put a single one-block buffer at each compute
node *in front of* 10 I/O nodes with 50 buffers each, and ask how much
the compute-node layer steals from the I/O-node layer.  Answer: only a
~3 % reduction in the I/O-node hit rate — which means the I/O-node hits
were mostly *interprocess* (different nodes reusing each other's blocks),
a kind of locality a per-node cache cannot capture by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.caching.blockspan import expand_spans
from repro.caching.compute_node import read_only_file_ids
from repro.caching.io_node import _build_caches, _resolve_stream, request_jobs
from repro.caching.policies import LRUPolicy, ReplacementPolicy
from repro.errors import CacheConfigError
from repro.trace.frame import TraceFrame
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class CombinedResult:
    """I/O-node hit rates with and without the compute-node layer."""

    io_hit_rate_without: float
    io_hit_rate_with: float
    compute_hit_rate: float
    requests_absorbed: int
    sub_requests_without: int
    sub_requests_with: int

    @property
    def io_hit_rate_reduction(self) -> float:
        """Absolute drop in I/O-node hit rate caused by the compute layer
        (paper: about 3 percentage points)."""
        return self.io_hit_rate_without - self.io_hit_rate_with


def _serve(
    caches: list[ReplacementPolicy],
    blocks: list[int],
    ios: list[int],
    file: int,
    lo: int,
    hi: int,
) -> tuple[int, int]:
    """Send one request's blocks (``[lo, hi)`` in the expansion) to the
    I/O nodes; returns (sub_requests, hits).

    Writes also pass through here (populating buffers), but the caller
    only scores the read traffic, matching the Figure 9 metric."""
    if hi - lo == 1:
        cache = caches[ios[lo]]
        key = (file, blocks[lo])
        present = key in cache
        cache.access(key)
        return 1, 1 if present else 0
    full: dict[int, bool] = {}
    for i in range(lo, hi):
        io = ios[i]
        cache = caches[io]
        key = (file, blocks[i])
        full[io] = full.get(io, True) and key in cache
        cache.access(key)
    return len(full), sum(1 for v in full.values() if v)


def simulate_combined(
    frame: TraceFrame,
    compute_buffers: int = 1,
    io_buffers_per_node: int = 50,
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
    stream: tuple[np.ndarray, ...] | None = None,
) -> CombinedResult:
    """Run both cache layers over the trace, with and without filtering.

    Reads of read-only files pass through the issuing node's compute
    cache first; a fully-satisfied request is absorbed and never reaches
    the I/O nodes.  Everything else (writes, reads of writable files, and
    partially-missed reads) goes to the I/O nodes in full, as CFS would
    send it.

    The request stream and its block expansion are computed once and
    shared by all three cache layers; callers that already hold the
    stream (e.g. alongside a Figure 9 sweep) can pass it in.
    """
    if compute_buffers < 1:
        raise CacheConfigError("need at least one compute-node buffer")
    ro = set(read_only_file_ids(frame).tolist())
    files, first, last, nodes, is_read = _resolve_stream(frame, stream, block_size)
    jobs = request_jobs(frame, block_size)

    io_with = _build_caches(policy, io_buffers_per_node * n_io_nodes, n_io_nodes)
    io_without = _build_caches(policy, io_buffers_per_node * n_io_nodes, n_io_nodes)
    compute: dict[tuple[int, int], LRUPolicy] = {}

    spans = expand_spans(files, first, last)
    starts = spans.starts.tolist()
    blocks = spans.block.tolist()
    ios = spans.io_nodes(n_io_nodes).tolist()

    io_hits_with = io_hits_without = 0
    io_sub_with = io_sub_without = 0
    comp_hits = comp_reqs = 0
    absorbed = 0

    for r, (job, node, file, rd) in enumerate(
        zip(jobs.tolist(), nodes.tolist(), files.tolist(), is_read.tolist())
    ):
        lo, hi = starts[r], starts[r + 1]
        # the unfiltered baseline sees every request
        subs, hits = _serve(io_without, blocks, ios, file, lo, hi)
        if rd:
            io_sub_without += subs
            io_hits_without += hits
        forwarded = True
        if rd and file in ro:
            cache = compute.get((job, node))
            if cache is None:
                cache = LRUPolicy(compute_buffers)
                compute[(job, node)] = cache
            hit = all((file, blocks[i]) in cache for i in range(lo, hi))
            for i in range(lo, hi):
                cache.touch((file, blocks[i]))
            comp_reqs += 1
            if hit:
                comp_hits += 1
                absorbed += 1
                forwarded = False
        if forwarded:
            subs, hits = _serve(io_with, blocks, ios, file, lo, hi)
            if rd:
                io_sub_with += subs
                io_hits_with += hits

    if obs.enabled():
        obs.add("caching.combined.simulations")
        obs.add("caching.combined.requests_absorbed", absorbed)
        obs.add("caching.combined.compute_requests", comp_reqs)
    return CombinedResult(
        io_hit_rate_without=io_hits_without / io_sub_without if io_sub_without else 0.0,
        io_hit_rate_with=io_hits_with / io_sub_with if io_sub_with else 0.0,
        compute_hit_rate=comp_hits / comp_reqs if comp_reqs else 0.0,
        requests_absorbed=absorbed,
        sub_requests_without=io_sub_without,
        sub_requests_with=io_sub_with,
    )
