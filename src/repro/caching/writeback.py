"""Write-behind policies at the I/O nodes.

§5 points to Kotz & Ellis's write-back study when calling for better
buffer management ("Replacement policies other than LRU or FIFO should
be developed (e.g., [19])").  That work compared when a dirty buffer
should go to disk:

- **write-through** — every write request goes straight to disk;
- **write-back** — a dirty block is written only when evicted (or at
  file close / end of trace);
- **WriteFull** — a dirty block is written as soon as it is completely
  full (every byte dirtied), which for sequential small writes is the
  moment the writer moves past it; eviction and close flush stragglers.

On this workload's dominant pattern — streams of sub-block sequential
writes — write-through hits the disk once per *request*, while the
delayed policies hit it once per *block*, with WriteFull getting the
data out almost as promptly as write-through.  This module measures disk
write operations and busy time for all three.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caching.policies import LRUPolicy
from repro.errors import CacheConfigError
from repro.machine.disk import Disk
from repro.trace.frame import TraceFrame
from repro.trace.records import EventKind
from repro.util.units import BLOCK_SIZE

POLICIES = ("write-through", "write-back", "write-full")


@dataclass(frozen=True)
class WritebackResult:
    """Disk write activity under one write policy."""

    policy: str
    write_requests: int
    disk_writes: int
    bytes_written_to_disk: int
    disk_busy_seconds: float

    @property
    def writes_per_request(self) -> float:
        """Disk writes per application write request (lower is better)."""
        if self.write_requests == 0:
            return 0.0
        return self.disk_writes / self.write_requests


class _DirtyTracker:
    """Dirty-byte accounting per cached block, for WriteFull detection."""

    def __init__(self, block_size: int) -> None:
        self.block_size = block_size
        self.dirty: dict[tuple[int, int], int] = {}  # key -> dirty byte count

    def add(self, key: tuple[int, int], nbytes: int) -> bool:
        """Record dirty bytes; True when the block just became full.

        Byte counts saturate at the block size (overwrites of the same
        range cannot be distinguished without byte maps; for the
        workload's non-overlapping sequential writes this is exact).
        """
        cur = self.dirty.get(key, 0)
        new = min(cur + nbytes, self.block_size)
        self.dirty[key] = new
        return cur < self.block_size <= new

    def pop(self, key: tuple[int, int]) -> int:
        """Remove and return a block's dirty byte count."""
        return self.dirty.pop(key, 0)


def simulate_writeback(
    frame: TraceFrame,
    total_buffers: int,
    policy: str = "write-back",
    n_io_nodes: int = 10,
    block_size: int = BLOCK_SIZE,
    disk: Disk | None = None,
) -> WritebackResult:
    """Replay the trace's writes under one write policy.

    Reads flow through the caches too (competing for buffers) but only
    write-side disk activity is reported.
    """
    if policy not in POLICIES:
        raise CacheConfigError(f"unknown write policy {policy!r}; choose from {POLICIES}")
    if total_buffers < 0:
        raise CacheConfigError("total_buffers must be non-negative")

    tr = frame.transfers
    if len(tr) == 0:
        raise CacheConfigError("no transfers in trace")
    d = disk if disk is not None else Disk()
    base, extra = divmod(total_buffers, n_io_nodes)
    caches = [_EvictionLRU(base + (1 if i < extra else 0)) for i in range(n_io_nodes)]
    dirty = _DirtyTracker(block_size)

    write_kind = int(EventKind.WRITE)
    write_requests = 0
    disk_writes = 0
    disk_bytes = 0
    busy = 0.0

    def flush(key: tuple[int, int], sequential: bool = False) -> None:
        nonlocal disk_writes, disk_bytes, busy
        nbytes = dirty.pop(key)
        if nbytes == 0:
            return
        disk_writes += 1
        disk_bytes += nbytes
        busy += d.service_time(nbytes, sequential=sequential)

    for row in tr:
        size = int(row["size"])
        if size <= 0:
            continue
        off = int(row["offset"])
        f = int(row["file"])
        is_write = int(row["kind"]) == write_kind
        b0 = off // block_size
        b1 = (off + size - 1) // block_size
        if is_write:
            write_requests += 1
        for b in range(b0, b1 + 1):
            io = b % n_io_nodes
            key = (f, b)
            evicted = caches[io].touch_with_eviction(key)
            if evicted is not None and policy != "write-through":
                flush(evicted)
            if not is_write:
                continue
            lo = max(off, b * block_size)
            hi = min(off + size, (b + 1) * block_size)
            span = hi - lo
            if policy == "write-through":
                disk_writes += 1
                disk_bytes += span
                busy += d.service_time(span, sequential=False)
            else:
                became_full = dirty.add(key, span)
                if policy == "write-full" and became_full:
                    flush(key, sequential=True)
    # end of trace: flush all remaining dirty blocks (sequential sweeps)
    if policy != "write-through":
        for key in list(dirty.dirty):
            flush(key, sequential=True)

    return WritebackResult(
        policy=policy,
        write_requests=write_requests,
        disk_writes=disk_writes,
        bytes_written_to_disk=disk_bytes,
        disk_busy_seconds=busy,
    )


class _EvictionLRU(LRUPolicy):
    """LRU that reports which key an access evicted (for dirty flushes)."""

    def touch_with_eviction(self, key) -> tuple[int, int] | None:
        if self.capacity == 0:
            return None
        if key in self._store:
            self._store.move_to_end(key)
            return None
        self._store[key] = None
        if len(self._store) > self.capacity:
            victim, _ = self._store.popitem(last=False)
            return victim
        return None


def compare_write_policies(
    frame: TraceFrame,
    total_buffers: int = 500,
    n_io_nodes: int = 10,
    block_size: int = BLOCK_SIZE,
) -> dict[str, WritebackResult]:
    """All three write policies over the same trace."""
    return {
        policy: simulate_writeback(
            frame, total_buffers, policy=policy,
            n_io_nodes=n_io_nodes, block_size=block_size,
        )
        for policy in POLICIES
    }
