"""End-to-end request latency: what a cache hit is actually worth.

The paper stops at hit rates ("the hit rates were similar; performance
is another issue").  This extension answers the deferred question with
the machine model already in hand: a request's latency is the message
round trip to each I/O node it touches, plus disk service for the blocks
that miss.  Replaying the trace with and without I/O-node caches yields
the application-visible I/O time the cache saves.

The model is deliberately contention-free (no queueing): it prices each
request in isolation, which is the right granularity for comparing
configurations on the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.caching.io_node import _build_caches, request_stream
from repro.errors import CacheConfigError
from repro.machine.disk import Disk
from repro.machine.message import MessageModel
from repro.machine.topology import Hypercube
from repro.trace.frame import TraceFrame
from repro.util.cdf import EmpiricalCDF
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class LatencyResult:
    """Per-request latency statistics for one configuration."""

    n_requests: int
    total_seconds: float
    latencies: np.ndarray  # seconds, one per request

    @property
    def mean(self) -> float:
        """Mean request latency in seconds."""
        return self.total_seconds / self.n_requests if self.n_requests else 0.0

    @property
    def median(self) -> float:
        """Median request latency in seconds."""
        return float(np.median(self.latencies)) if len(self.latencies) else 0.0

    @property
    def p95(self) -> float:
        """95th-percentile request latency in seconds."""
        return float(np.percentile(self.latencies, 95)) if len(self.latencies) else 0.0

    def cdf(self) -> EmpiricalCDF:
        """Latency CDF (milliseconds)."""
        return EmpiricalCDF(self.latencies * 1e3)


@dataclass(frozen=True)
class LatencyComparison:
    """(uncached, cached) request latency over one trace."""

    uncached: LatencyResult
    cached: LatencyResult

    @property
    def speedup(self) -> float:
        """Total-I/O-time ratio, uncached over cached."""
        if self.cached.total_seconds == 0:
            return float("inf")
        return self.uncached.total_seconds / self.cached.total_seconds


def simulate_request_latency(
    frame: TraceFrame,
    total_buffers: int,
    n_io_nodes: int = 10,
    policy: str = "lru",
    block_size: int = BLOCK_SIZE,
    disk: Disk | None = None,
    messages: MessageModel | None = None,
    io_node_overhead: float = 0.5e-3,
) -> LatencyResult:
    """Price every request through the machine model.

    Per request: one message round trip (request + response bytes) to
    each I/O node touched, a fixed per-sub-request I/O-node software
    overhead (CFS's server path, ~0.5 ms), and disk service for the
    blocks that miss — contiguous misses of one request coalescing into
    single disk operations, sequential when they extend the disk's last
    position.  With ``total_buffers=0`` every block misses (the
    cacheless baseline).
    """
    if total_buffers < 0:
        raise CacheConfigError("total_buffers must be non-negative")
    if io_node_overhead < 0:
        raise CacheConfigError("io_node_overhead must be non-negative")
    files, first, last, nodes, is_read = request_stream(frame, block_size)
    caches = _build_caches(policy, total_buffers, n_io_nodes)
    d = disk if disk is not None else Disk()
    msg = messages if messages is not None else MessageModel(Hypercube(7))
    # I/O nodes hang off evenly spaced compute nodes; approximating each
    # as its own hypercube attachment point
    io_attach = [
        (i * max(1, 128 // n_io_nodes)) % 128 for i in range(n_io_nodes)
    ]

    latencies = np.zeros(len(files))
    last_block: dict[int, tuple[int, int]] = {}
    for r in range(len(files)):
        f = int(files[r])
        b0 = int(first[r])
        b1 = int(last[r])
        node = int(nodes[r]) % 128
        per_io_bytes: dict[int, int] = {}
        miss_runs: dict[int, list[tuple[int, int]]] = {}
        for b in range(b0, b1 + 1):
            io = b % n_io_nodes
            # data moves at block granularity, as CFS shipped striped blocks
            per_io_bytes[io] = per_io_bytes.get(io, 0) + block_size
            hit = caches[io].access((f, b))
            if not hit:
                runs = miss_runs.setdefault(io, [])
                if runs and runs[-1][1] == b - n_io_nodes:
                    runs[-1] = (runs[-1][0], b)
                else:
                    runs.append((b, b))
        # the request completes when its slowest I/O node finishes
        worst = 0.0
        for io, nbytes in per_io_bytes.items():
            t = msg.latency_bytes(node, io_attach[io], 64)          # request
            t += msg.latency_bytes(io_attach[io], node, nbytes)     # data back
            t += io_node_overhead
            for a, z in miss_runs.get(io, []):
                n_blocks = (z - a) // n_io_nodes + 1
                sequential = last_block.get(io) == (f, a - n_io_nodes)
                last_block[io] = (f, z)
                t += d.service_time(n_blocks * block_size, sequential=sequential)
            worst = max(worst, t)
        latencies[r] = worst
    return LatencyResult(
        n_requests=len(files),
        total_seconds=float(latencies.sum()),
        latencies=latencies,
    )


def compare_latency(
    frame: TraceFrame,
    total_buffers: int = 500,
    n_io_nodes: int = 10,
    block_size: int = BLOCK_SIZE,
) -> LatencyComparison:
    """Uncached vs cached request latency over one trace."""
    uncached = simulate_request_latency(
        frame, 0, n_io_nodes=n_io_nodes, block_size=block_size
    )
    cached = simulate_request_latency(
        frame, total_buffers, n_io_nodes=n_io_nodes, block_size=block_size
    )
    return LatencyComparison(uncached=uncached, cached=cached)
