"""Parallel fan-out across independent cache-sweep lines.

A Figure 9 style experiment is a set of *lines* — one
``(policy, n_io_nodes)`` curve each — that share nothing but the
read-only request stream.  The stack-distance engine already collapses
each LRU/OPT line to a single pass; what remains (FIFO and interprocess
replays, multi-``n_io_nodes`` grids, benchmark matrices) is
embarrassingly parallel across lines, so this module fans the lines out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

The precomputed request stream (a tuple of numpy arrays) is built once
and *shared* with the workers through :func:`repro.util.pool.map_tasks`
— inherited copy-on-write under fork, attached as shared-memory
segments under spawn — never pickled per line.  When the pool cannot
help — one line, one worker, or an executor the platform refuses to
start — the lines run serially in-process with identical results.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro import obs
from repro.caching.io_node import _resolve_stream, sweep_buffer_counts
from repro.caching.results import HitRateCurve
from repro.errors import CacheConfigError
from repro.util.pool import map_tasks
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class SweepLine:
    """One curve of a sweep: a policy on a given I/O-node layout."""

    policy: str
    n_io_nodes: int = 10
    engine: str = "auto"


def _as_line(spec: SweepLine | str | tuple) -> SweepLine:
    if isinstance(spec, SweepLine):
        return spec
    if isinstance(spec, str):
        return SweepLine(policy=spec)
    if isinstance(spec, tuple) and 1 <= len(spec) <= 3:
        return SweepLine(*spec)
    raise CacheConfigError(f"cannot interpret sweep line spec {spec!r}")


def _run_line(
    stream: tuple[np.ndarray, ...],
    buffer_counts: Sequence[int],
    line: SweepLine,
    block_size: int,
) -> HitRateCurve:
    t0 = time.perf_counter()
    curve = sweep_buffer_counts(
        None,
        buffer_counts,
        n_io_nodes=line.n_io_nodes,
        policy=line.policy,
        block_size=block_size,
        engine=line.engine,
        stream=stream,
    )
    if obs.enabled():
        obs.hist("caching.sweep.line_seconds", time.perf_counter() - t0)
    return curve


def sweep_lines(
    frame,
    buffer_counts: Sequence[int],
    lines: Sequence[SweepLine | str | tuple],
    block_size: int = BLOCK_SIZE,
    workers: int | None = None,
    stream: tuple[np.ndarray, ...] | None = None,
    scheduler: str = "steal",
    straggler_timeout: float | None = None,
) -> list[HitRateCurve]:
    """Compute several sweep lines over one trace, in parallel.

    ``lines`` entries may be :class:`SweepLine` instances, bare policy
    names, or ``(policy, n_io_nodes[, engine])`` tuples.  Results come
    back in the order given.  ``workers`` caps the process count
    (default: one per line, bounded by the CPU count); with one worker
    or one line everything runs in-process.

    Sweep lines are wildly uneven (an OPT line costs several LRU
    lines), so the fan-out defaults to the work-stealing scheduler
    (:mod:`repro.util.sched`): idle workers take queued lines from the
    busiest worker's tail, and ``straggler_timeout`` seconds without
    progress re-dispatches the oldest in-flight line.  Results are
    identical to the static schedule either way.
    """
    specs = [_as_line(line) for line in lines]
    if not specs:
        return []
    stream = _resolve_stream(frame, stream, block_size)
    counts = [int(c) for c in buffer_counts]
    obs.add("caching.sweeps.lines", len(specs))
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    # the stream is the shared object: forked workers inherit it
    # copy-on-write, spawned workers attach to it in shared memory —
    # either way it is built once and never pickled per line
    names = [
        f"line{i}/{line.policy}/io{line.n_io_nodes}"
        for i, line in enumerate(specs)
    ]
    tasks = {
        name: partial(
            _run_line, buffer_counts=counts, line=line, block_size=block_size
        )
        for name, line in zip(names, specs)
    }
    with obs.span("caching/sweep_lines"):
        done = map_tasks(
            tasks, stream, workers,
            scheduler=scheduler, straggler_timeout=straggler_timeout,
        )
        return [done[name] for name in names]
