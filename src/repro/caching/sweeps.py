"""Parallel fan-out across independent cache-sweep lines.

A Figure 9 style experiment is a set of *lines* — one
``(policy, n_io_nodes)`` curve each — that share nothing but the
read-only request stream.  The stack-distance engine already collapses
each LRU/OPT line to a single pass; what remains (FIFO and interprocess
replays, multi-``n_io_nodes`` grids, benchmark matrices) is
embarrassingly parallel across lines, so this module fans the lines out
over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Workers receive the precomputed stream (a tuple of numpy arrays, cheap
to pickle and shared page-for-page under fork), never a
:class:`~repro.trace.frame.TraceFrame`.  When the pool cannot help —
one line, one worker, or an executor the platform refuses to start —
the lines run serially in-process with identical results.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.caching.io_node import _resolve_stream, sweep_buffer_counts
from repro.caching.results import HitRateCurve
from repro.errors import CacheConfigError
from repro.util.units import BLOCK_SIZE


@dataclass(frozen=True)
class SweepLine:
    """One curve of a sweep: a policy on a given I/O-node layout."""

    policy: str
    n_io_nodes: int = 10
    engine: str = "auto"


def _as_line(spec: SweepLine | str | tuple) -> SweepLine:
    if isinstance(spec, SweepLine):
        return spec
    if isinstance(spec, str):
        return SweepLine(policy=spec)
    if isinstance(spec, tuple) and 1 <= len(spec) <= 3:
        return SweepLine(*spec)
    raise CacheConfigError(f"cannot interpret sweep line spec {spec!r}")


def _run_line(
    stream: tuple[np.ndarray, ...],
    buffer_counts: Sequence[int],
    line: SweepLine,
    block_size: int,
) -> HitRateCurve:
    return sweep_buffer_counts(
        None,
        buffer_counts,
        n_io_nodes=line.n_io_nodes,
        policy=line.policy,
        block_size=block_size,
        engine=line.engine,
        stream=stream,
    )


def _run_lines_serial(
    stream: tuple[np.ndarray, ...],
    counts: Sequence[int],
    specs: Sequence[SweepLine],
    block_size: int,
) -> list[HitRateCurve]:
    if not obs.enabled():
        return [_run_line(stream, counts, line, block_size) for line in specs]
    curves: list[HitRateCurve] = []
    for line in specs:
        t0 = time.perf_counter()
        curves.append(_run_line(stream, counts, line, block_size))
        obs.hist("caching.sweep.line_seconds", time.perf_counter() - t0)
    return curves


def sweep_lines(
    frame,
    buffer_counts: Sequence[int],
    lines: Sequence[SweepLine | str | tuple],
    block_size: int = BLOCK_SIZE,
    workers: int | None = None,
    stream: tuple[np.ndarray, ...] | None = None,
) -> list[HitRateCurve]:
    """Compute several sweep lines over one trace, in parallel.

    ``lines`` entries may be :class:`SweepLine` instances, bare policy
    names, or ``(policy, n_io_nodes[, engine])`` tuples.  Results come
    back in the order given.  ``workers`` caps the process count
    (default: one per line, bounded by the CPU count); with one worker
    or one line everything runs in-process.
    """
    specs = [_as_line(line) for line in lines]
    if not specs:
        return []
    stream = _resolve_stream(frame, stream, block_size)
    counts = [int(c) for c in buffer_counts]
    obs.add("caching.sweeps.lines", len(specs))
    if workers is None:
        workers = min(len(specs), os.cpu_count() or 1)
    with obs.span("caching/sweep_lines"):
        if workers <= 1 or len(specs) <= 1:
            return _run_lines_serial(stream, counts, specs, block_size)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_run_line, stream, counts, line, block_size)
                    for line in specs
                ]
                return [f.result() for f in futures]
        except (BrokenExecutor, OSError):
            # the pool itself failed (fork refused, worker killed, ...);
            # the lines are deterministic, so fall back to serial
            return _run_lines_serial(stream, counts, specs, block_size)
