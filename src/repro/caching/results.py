"""Result containers for cache simulations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CacheConfigError


@dataclass(frozen=True)
class HitRateCurve:
    """Hit rate as a function of total buffer count (one Figure 9 line)."""

    policy: str
    n_io_nodes: int
    buffer_counts: np.ndarray
    hit_rates: np.ndarray

    def __post_init__(self) -> None:
        if len(self.buffer_counts) != len(self.hit_rates):
            raise CacheConfigError("curve arrays must be parallel")

    def buffers_for_hit_rate(self, target: float) -> int | None:
        """Smallest simulated buffer count reaching ``target`` hit rate.

        None when the curve never gets there.  Used to reproduce the
        paper's "4000 buffers for 90 % with LRU, nearly 20000 with FIFO".
        """
        for count, rate in zip(self.buffer_counts, self.hit_rates):
            if rate >= target:
                return int(count)
        return None

    def rows(self) -> list[tuple[int, float]]:
        """(buffers, hit rate) pairs for tabulation."""
        return [
            (int(c), float(r)) for c, r in zip(self.buffer_counts, self.hit_rates)
        ]
