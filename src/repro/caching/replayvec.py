"""Vectorized whole-curve cache replay for the stack policies.

:func:`repro.caching.io_node.simulate_io_node_caches` replays the trace
through per-block Python dictionaries — the oracle, definitionally
correct for any policy, and capped at tens of thousands of events per
second.  For the stack algorithms (LRU and OPT) the same replay can be
scored entirely in numpy: the stack-inclusion property says an access
hits a capacity-``C`` cache iff its stack depth is at most ``C``, so one
depth computation (:mod:`repro.caching.stackdist`) replaces the per-
capacity dictionary walk, and each requested buffer count reduces to a
vector compare over the precomputed sub-requests.

The results are *bit-identical* to the oracle at every capacity — same
integer hit and sub-request counts (enforced against
:func:`simulate_io_node_caches` by ``tests/test_caching_stackdist.py``)
— while replaying millions of events per second.  Policies that are not
stack algorithms (FIFO, interprocess) stay on the oracle.

This differs from :class:`repro.caching.stackdist.IONodeStackProfile`
in how a capacity is scored: the profile pre-sorts per-node depth arrays
and binary-searches each capacity (best for dense grids), while this
module scores each capacity with one masked reduction over the flat
sub-request arrays — no per-node Python loop, no sort, and the natural
shape for replaying *batches* of counts from a shared request stream.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import obs
from repro.caching.blockspan import expand_spans
from repro.caching.io_node import IONodeCacheResult
from repro.caching.results import HitRateCurve
from repro.caching.stackdist import _depths_for_policy, _encode_pairs
from repro.errors import CacheConfigError


def replay_state(
    stream: tuple[np.ndarray, ...], n_io_nodes: int, policy: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One pass over the request stream → per-sub-request replay state.

    Returns ``(min_caps, sub_io, sub_read)``: for every sub-request (one
    per I/O node a request touches, in time order) the minimum cache
    capacity at which it is a full hit, the I/O node serving it, and
    whether it scores as a read.
    """
    if n_io_nodes <= 0:
        raise CacheConfigError("need at least one I/O node")
    files, first, last, _nodes, is_read = stream
    spans = expand_spans(files, first, last)
    io = spans.io_nodes(n_io_nodes)
    depths = _depths_for_policy(
        policy, io, _encode_pairs(spans.file, spans.block)
    )
    subs = spans.sub_requests(n_io_nodes)
    # full hit ⇔ every spanned block resident ⇔ capacity >= max depth
    min_caps = subs.max_over_blocks(depths)
    sub_read = np.asarray(is_read, dtype=bool)[subs.req]
    return min_caps, subs.io_node, sub_read


def batch_replay(
    stream: tuple[np.ndarray, ...],
    buffer_counts: Sequence[int],
    n_io_nodes: int = 10,
    policy: str = "lru",
) -> list[IONodeCacheResult]:
    """Replay every requested buffer count in one vectorized batch.

    Each returned element equals the oracle's
    :func:`~repro.caching.io_node.simulate_io_node_caches` result for
    that ``total_buffers`` — integer for integer.
    """
    min_caps, sub_io, sub_read = replay_state(stream, n_io_nodes, policy)
    all_subs = len(min_caps)
    read_subs = int(np.count_nonzero(sub_read))
    results: list[IONodeCacheResult] = []
    for count in buffer_counts:
        count = int(count)
        if count < 0:
            raise CacheConfigError("total_buffers must be non-negative")
        # buffers spread round-robin: nodes below ``extra`` get one more
        base, extra = divmod(count, n_io_nodes)
        hit = min_caps <= base + (sub_io < extra)
        results.append(
            IONodeCacheResult(
                policy=policy,
                n_io_nodes=n_io_nodes,
                total_buffers=count,
                read_sub_requests=read_subs,
                read_hits=int(np.count_nonzero(hit & sub_read)),
                all_sub_requests=all_subs,
                all_hits=int(np.count_nonzero(hit)),
            )
        )
    if obs.enabled():
        obs.add("caching.replayvec.batches")
        obs.add("caching.replayvec.capacities", len(results))
        obs.add("caching.replayvec.sub_requests", all_subs * len(results))
    return results


def batch_replay_curve(
    stream: tuple[np.ndarray, ...],
    buffer_counts: Sequence[int],
    n_io_nodes: int = 10,
    policy: str = "lru",
) -> HitRateCurve:
    """The Figure 9 line from one vectorized batch replay."""
    results = batch_replay(stream, buffer_counts, n_io_nodes, policy)
    return HitRateCurve(
        policy=policy,
        n_io_nodes=n_io_nodes,
        buffer_counts=np.asarray([int(c) for c in buffer_counts], dtype=np.int64),
        hit_rates=np.asarray([r.hit_rate for r in results]),
    )
