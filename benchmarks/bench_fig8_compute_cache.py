"""Figure 8: compute-node caching simulation.

Paper: per-job hit rates clump (about 40 % of jobs above 75 %, about
30 % at zero); one buffer per node was as good as fifty — spatial, not
temporal, locality.
"""

from conftest import show

from repro.caching import simulate_compute_node_caches
from repro.util.tables import format_percent, format_table


def test_fig8_compute_node_cache(benchmark, frame):
    one = benchmark.pedantic(
        simulate_compute_node_caches, args=(frame,),
        kwargs={"buffers": 1}, rounds=1, iterations=1,
    )
    ten = simulate_compute_node_caches(frame, buffers=10)
    fifty = simulate_compute_node_caches(frame, buffers=50)

    rows = [
        (r.buffers, len(r.job_ids),
         format_percent(r.fraction_above(0.75)),
         format_percent(r.fraction_zero()),
         format_percent(r.overall_hit_rate))
        for r in (one, ten, fifty)
    ]
    show(
        "Figure 8: compute-node cache (read-only, LRU)",
        format_table(
            ["buffers", "jobs", ">75% hit (paper 40%)", "0% hit (paper 30%)", "overall"],
            rows,
        ),
    )

    # the trimodal clumps exist
    assert one.fraction_zero() > 0.1
    assert one.fraction_above(0.75) > 0.1
    # one buffer is almost as good as fifty, per job (the figure's claim;
    # overall rates can be skewed by a single request-heavy job — the
    # paper's "very few jobs" where extra buffers helped)
    assert fifty.fraction_above(0.75) - one.fraction_above(0.75) < 0.25
    # monotone in buffers
    assert fifty.total_hits >= ten.total_hits >= one.total_hits
