"""Table 3: number of distinct request sizes used in each file.

Paper: 0 sizes (opened, never accessed) 3.9 %, one 40.0 %, two 51.4 %,
three 3.9 %, 4+ 0.8 % — over 90 % of files use at most two request
sizes; combined with Table 2, access is regular and matrix-structured.
"""

from conftest import show

from repro.core.intervals import request_size_table
from repro.util.tables import format_table

PAPER_PCT = {"0": 3.9, "1": 40.0, "2": 51.4, "3": 3.9, "4+": 0.8}


def test_table3_request_sizes(benchmark, frame):
    table = benchmark(request_size_table, frame)

    total = sum(table.values())
    show(
        "Table 3: distinct request sizes per file",
        format_table(
            ["sizes", "files", "%", "paper %"],
            [
                (k, v, f"{100 * v / total:.1f}", PAPER_PCT[k])
                for k, v in table.items()
            ],
        ),
    )

    assert (table["1"] + table["2"]) / total > 0.75
    assert table["4+"] / total < 0.06
