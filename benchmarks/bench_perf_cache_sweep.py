"""Perf benchmark: oracle replay vs vectorized replay vs stack distances.

The Figure 9 sweep has three engines.  The dictionary **oracle**
(``engine="replay-python"``) replays the trace through per-block Python
dicts once *per buffer count* — definitionally correct for any policy,
tens of thousands of events per second.  The **vectorized replay**
(``engine="replay"``, :mod:`repro.caching.replayvec`) computes stack
depths once and scores every capacity with a masked numpy reduction —
bit-identical to the oracle, millions of events per second.  The
**stack-distance** engine pre-sorts per-node depth profiles and reads
capacities off by binary search.  This benchmark times all three on the
same LRU sweep at two trace scales, checks the acceptance contract
(bit-for-bit equal curves, vectorized replay >= 5x the oracle's event
rate, stackdist >= 5x the oracle sweep) and records the trajectory in
``BENCH_cache_sweep.json``.

Methodology (also in docs/DEVELOPMENT.md): the request stream is
precomputed and shared, so only engine time is measured; the oracle
sweep is timed once (it is seconds long — timer noise is negligible);
the vectorized and stackdist passes are timed as the best of three after
one warmup run, which discharges first-call allocator effects the same
way a warm sweep loop would.
"""

import time

from conftest import emit_json, show

from repro.caching.io_node import request_stream, sweep_buffer_counts
from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

#: the Figure 9 buffer-count grid
COUNTS = [50, 125, 250, 500, 1000, 2000, 4000]

#: the second, smaller scale (the first is the session bench trace)
SMALL_SCALE = 0.02

#: acceptance floor for the bench-trace stackdist speedup over the oracle
MIN_SPEEDUP = 5.0

#: acceptance floor for the vectorized replay's event rate vs the oracle
MIN_REPLAY_RATE_GAIN = 5.0


def _sweep(engine, stream):
    return sweep_buffer_counts(
        None, COUNTS, n_io_nodes=10, policy="lru", engine=engine, stream=stream
    )


def _best_of(engine, stream, rounds: int = 3):
    _sweep(engine, stream)  # warmup
    best = float("inf")
    curve = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        curve = _sweep(engine, stream)
        best = min(best, time.perf_counter() - t0)
    return best, curve


def _time_engines(frame) -> dict:
    stream = request_stream(frame)
    n_events = int(len(stream[0]))

    t0 = time.perf_counter()
    oracle = _sweep("replay-python", stream)
    oracle_s = time.perf_counter() - t0

    replay_s, replayvec = _best_of("replay", stream)
    stack_s, stackdist = _best_of("stackdist", stream)

    assert (replayvec.hit_rates == oracle.hit_rates).all(), (
        "vectorized replay curve must equal the oracle bit-for-bit"
    )
    assert (stackdist.hit_rates == oracle.hit_rates).all(), (
        "stack-distance curve must equal the oracle bit-for-bit"
    )
    return {
        "events": n_events,
        "oracle_seconds": oracle_s,
        "replay_seconds": replay_s,
        "stackdist_seconds": stack_s,
        "speedup_stackdist": oracle_s / stack_s,
        "speedup_replayvec": oracle_s / replay_s,
        "oracle_events_per_sec": n_events / oracle_s,
        "replay_events_per_sec": n_events / replay_s,
        "stackdist_events_per_sec": n_events / stack_s,
        "buffer_counts": COUNTS,
        "hit_rates": [float(r) for r in oracle.hit_rates],
    }


def test_perf_cache_sweep(benchmark, frame):
    small_frame = WorkloadGenerator(
        ames1993(SMALL_SCALE), seed=7
    ).run("direct").frame

    results = benchmark.pedantic(
        lambda: {"bench": _time_engines(frame), "small": _time_engines(small_frame)},
        rounds=1, iterations=1,
    )

    rows = [
        (
            name,
            r["events"],
            f"{r['oracle_seconds']:.2f}",
            f"{r['replay_seconds']:.3f}",
            f"{r['stackdist_seconds']:.3f}",
            f"{r['replay_events_per_sec']:,.0f}",
            f"{r['speedup_replayvec']:.0f}x",
        )
        for name, r in results.items()
    ]
    show(
        "Figure 9 LRU sweep: oracle vs vectorized replay vs stack distances",
        format_table(
            ["trace", "events", "oracle s", "replay s", "stackdist s",
             "replay ev/s", "replay gain"],
            rows,
        ),
    )
    emit_json("cache_sweep", results)

    # one stackdist pass must beat the whole oracle sweep by >= 5x on
    # the bench trace, and the vectorized replay must push the event
    # rate >= 5x past the oracle's (the smaller trace has proportionally
    # more fixed overhead, so it only needs to win)
    assert results["bench"]["speedup_stackdist"] >= MIN_SPEEDUP
    assert results["small"]["speedup_stackdist"] > 1.0
    for r in results.values():
        assert (
            r["replay_events_per_sec"]
            >= MIN_REPLAY_RATE_GAIN * r["oracle_events_per_sec"]
        ), "vectorized replay fell below 5x the oracle event rate"
