"""Perf benchmark: replay sweep vs single-pass stack-distance engine.

The Figure 9 replay sweep costs one full trace traversal *per buffer
count*; the stack-distance engine traverses the trace once and reads
every capacity off the resulting depth profile.  This benchmark times
both engines on the same LRU sweep at two trace scales, checks the
acceptance contract (bit-for-bit equal curves, >= 5x speedup on the
bench trace), and records the trajectory in ``BENCH_cache_sweep.json``.

Methodology (also in docs/DEVELOPMENT.md): the request stream is
precomputed and shared, so only engine time is measured; the replay
sweep is timed once (it is seconds long — timer noise is negligible);
the stackdist pass is timed as the best of three after one warmup run,
which discharges first-call allocator effects the same way a warm sweep
loop would.
"""

import time

from conftest import emit_json, show

from repro.caching.io_node import request_stream, sweep_buffer_counts
from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

#: the Figure 9 buffer-count grid
COUNTS = [50, 125, 250, 500, 1000, 2000, 4000]

#: the second, smaller scale (the first is the session bench trace)
SMALL_SCALE = 0.02

#: acceptance floor for the bench-trace speedup
MIN_SPEEDUP = 5.0


def _time_engines(frame) -> dict:
    stream = request_stream(frame)
    n_events = int(len(stream[0]))

    t0 = time.perf_counter()
    replay = sweep_buffer_counts(
        None, COUNTS, n_io_nodes=10, policy="lru", engine="replay", stream=stream
    )
    replay_s = time.perf_counter() - t0

    sweep_buffer_counts(  # warmup
        None, COUNTS, n_io_nodes=10, policy="lru", engine="stackdist", stream=stream
    )
    stack_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        stackdist = sweep_buffer_counts(
            None, COUNTS, n_io_nodes=10, policy="lru",
            engine="stackdist", stream=stream,
        )
        stack_s = min(stack_s, time.perf_counter() - t0)

    assert (replay.hit_rates == stackdist.hit_rates).all(), (
        "stack-distance curve must equal replay bit-for-bit"
    )
    return {
        "events": n_events,
        "replay_seconds": replay_s,
        "stackdist_seconds": stack_s,
        "speedup": replay_s / stack_s,
        "replay_events_per_sec": n_events / replay_s,
        "stackdist_events_per_sec": n_events / stack_s,
        "buffer_counts": COUNTS,
        "hit_rates": [float(r) for r in stackdist.hit_rates],
    }


def test_perf_cache_sweep(benchmark, frame):
    small_frame = WorkloadGenerator(
        ames1993(SMALL_SCALE), seed=7
    ).run("direct").frame

    results = benchmark.pedantic(
        lambda: {"bench": _time_engines(frame), "small": _time_engines(small_frame)},
        rounds=1, iterations=1,
    )

    rows = [
        (
            name,
            r["events"],
            f"{r['replay_seconds']:.2f}",
            f"{r['stackdist_seconds']:.3f}",
            f"{r['speedup']:.1f}x",
            f"{r['stackdist_events_per_sec']:,.0f}",
        )
        for name, r in results.items()
    ]
    show(
        "Figure 9 LRU sweep: replay vs single-pass stack distances",
        format_table(
            ["trace", "events", "replay s", "stackdist s", "speedup", "events/s"],
            rows,
        ),
    )
    emit_json("cache_sweep", results)

    # one stackdist pass must beat the whole replay sweep by >= 5x on
    # the bench trace (the smaller trace has proportionally more fixed
    # overhead, so it only needs to win)
    assert results["bench"]["speedup"] >= MIN_SPEEDUP
    assert results["small"]["speedup"] > 1.0
