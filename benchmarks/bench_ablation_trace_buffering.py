"""Ablation: the instrumentation's per-node trace-buffer size.

The paper chose 4 KB buffers (one message fragment) and reported >90 %
fewer trace messages.  This ablation replays the same record stream
through different buffer capacities and reports the message saving — the
trade-off between collector traffic and records lost to a crash.
"""

from conftest import show

from repro.trace.codec import RECORD_SIZE
from repro.trace.collector import Collector
from repro.trace.records import EventKind, Record, TraceHeader
from repro.trace.writer import TraceWriter
from repro.util.tables import format_percent, format_table

N_RECORDS = 4000
N_NODES = 16


def _replay(capacity: int) -> tuple[float, int]:
    collector = Collector(TraceHeader())
    writer = TraceWriter(collector, lambda n: (lambda: 0.0), buffer_capacity=capacity)
    for i in range(N_RECORDS):
        writer.emit(
            Record(time=float(i), node=i % N_NODES, job=0, kind=EventKind.READ,
                   file=1, offset=i * 64, size=64)
        )
    saving = writer.message_savings
    writer.flush_all()
    return saving, collector.blocks_received


def _sweep():
    return {cap: _replay(cap) for cap in (RECORD_SIZE, 1024, 4096, 16384)}


def test_ablation_trace_buffer_capacity(benchmark):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    show(
        "Ablation: trace-buffer capacity",
        format_table(
            ["capacity", "messages", "saving vs unbuffered"],
            [
                (cap, blocks, format_percent(saving))
                for cap, (saving, blocks) in sorted(results.items())
            ],
        ),
    )

    # one record per message = no saving
    assert results[RECORD_SIZE][0] == 0.0
    # the paper's 4 KB choice saves >90%
    assert results[4096][0] > 0.9
    # bigger buffers save monotonically more
    savings = [results[c][0] for c in sorted(results)]
    assert savings == sorted(savings)
