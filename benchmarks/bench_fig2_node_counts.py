"""Figure 2: distribution of compute nodes used per job.

Paper: one-node jobs dominate the job population; large parallel jobs
dominate node usage; the iPSC limits widths to powers of two.
"""

import numpy as np
from conftest import show

from repro.core.jobstats import node_count_distribution
from repro.util.tables import format_table


def test_fig2_node_counts(benchmark, frame):
    dist = benchmark(node_count_distribution, frame)

    show(
        "Figure 2: job widths",
        format_table(
            ["nodes", "jobs", "% of jobs", "% of node-seconds"],
            [(c, n, 100 * jf, 100 * uf) for c, n, jf, uf in dist.rows()],
        ),
    )

    # powers of two only
    assert all(c & (c - 1) == 0 for c in dist.node_counts)
    by_count = dict(zip(dist.node_counts.tolist(), dist.job_fractions.tolist()))
    usage = dict(zip(dist.node_counts.tolist(), dist.usage_fractions.tolist()))
    assert by_count.get(1, 0.0) > 0.5               # 1-node jobs dominate count
    assert sum(v for k, v in usage.items() if k >= 16) > 0.35  # big jobs dominate usage
