"""Ablation: striping unit (CFS used 4 KB blocks).

Varies the block size used for striping and caching.  Smaller blocks
spread a request over more I/O nodes (parallelism) but shrink what one
buffer holds; larger blocks improve intrablock locality per buffer while
a fixed-byte cache holds fewer of them.
"""

from conftest import show

from repro.caching import simulate_io_node_caches
from repro.util.tables import format_table
from repro.util.units import format_bytes

CACHE_BYTES = 500 * 4096  # hold total cache *bytes* fixed across units


def _sweep(frame):
    out = {}
    for block_size in (1024, 4096, 16384):
        buffers = CACHE_BYTES // block_size
        res = simulate_io_node_caches(
            frame, buffers, n_io_nodes=10, policy="lru", block_size=block_size
        )
        out[block_size] = res.hit_rate
    return out


def test_ablation_striping_unit(benchmark, frame):
    rates = benchmark.pedantic(_sweep, args=(frame,), rounds=1, iterations=1)

    show(
        "Ablation: striping unit (fixed total cache bytes)",
        format_table(
            ["block size", "buffers", "read hit rate"],
            [
                (format_bytes(b), CACHE_BYTES // b, r)
                for b, r in sorted(rates.items())
            ],
        ),
    )

    assert all(0.0 <= r <= 1.0 for r in rates.values())
    # the workload's sub-4KB requests mean 4KB blocks already capture the
    # intrablock runs; going finer should not help
    assert rates[4096] >= rates[1024] - 0.05
