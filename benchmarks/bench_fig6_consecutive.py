"""Figure 6: CDF of per-file consecutive-access percentage.

Paper: 86 % of write-only files were 100 % consecutive but only 29 % of
read-only files — the gap is interleaved access, where successive records
go to different nodes and each node skips bytes between its requests.
"""

import numpy as np
from conftest import show

from repro.core.sequentiality import per_file_regularity
from repro.util.tables import format_percent, format_table


def test_fig6_consecutive(benchmark, frame):
    reg = benchmark(per_file_regularity, frame)

    rows = []
    for label, paper in (("wo", "86%"), ("ro", "29%"), ("rw", "-")):
        _, con = reg.select(label)
        if len(con) == 0:
            continue
        rows.append((
            label, len(con),
            format_percent(float(np.mean(con >= 1.0))),
            paper,
        ))
    show(
        "Figure 6: % of accesses consecutive, per file",
        format_table(["class", "files", "at 100%", "paper"], rows),
    )

    wo = reg.fully_consecutive_fraction("wo")
    ro = reg.fully_consecutive_fraction("ro")
    assert wo > 0.6            # write-only overwhelmingly consecutive
    assert ro < wo             # read-only much less so (interleaving)
