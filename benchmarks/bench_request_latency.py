"""The deferred performance question: application-visible I/O time.

Figure 9 measures hit rates; the paper defers latency ("performance is
another issue").  This bench prices every request through the machine
model (hypercube messages + CFS server overhead + disk service) with and
without I/O-node caches.
"""

from conftest import show

from repro.caching.latency import compare_latency
from repro.util.tables import format_table


def test_request_latency_with_and_without_cache(benchmark, frame):
    cmp = benchmark.pedantic(
        compare_latency, args=(frame,), kwargs={"total_buffers": 500},
        rounds=1, iterations=1,
    )

    rows = [
        ("uncached", f"{cmp.uncached.mean * 1e3:.2f}",
         f"{cmp.uncached.median * 1e3:.2f}", f"{cmp.uncached.p95 * 1e3:.2f}",
         f"{cmp.uncached.total_seconds:.0f}"),
        ("cached (500 buffers)", f"{cmp.cached.mean * 1e3:.2f}",
         f"{cmp.cached.median * 1e3:.2f}", f"{cmp.cached.p95 * 1e3:.2f}",
         f"{cmp.cached.total_seconds:.0f}"),
    ]
    show(
        "Request latency through the machine model",
        format_table(
            ["config", "mean ms", "median ms", "p95 ms", "total I/O s"], rows
        )
        + f"\ntotal-I/O-time speedup from caching: {cmp.speedup:.1f}x",
    )

    assert cmp.speedup > 1.5
    # cached median is a message round trip, not a disk access
    assert cmp.cached.median < cmp.uncached.median
