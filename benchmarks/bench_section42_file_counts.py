"""§4.2: the file population.

Paper, over 156 hours: almost 64,000 files opened — 44,500 write-only,
14,500 read-only (ratio ~3.1), under 2,300 read-write, ~2,500 untouched;
0.61 % of opens to temporary files; 1.2 MB written vs 3.3 MB read per
file on average.
"""

from conftest import show

from repro.core.filestats import population
from repro.util.tables import format_percent, format_table


def test_section42_file_population(benchmark, frame):
    pop = benchmark(population, frame)

    fr = pop.fractions()
    show(
        "§4.2: file population",
        format_table(
            ["class", "files", "fraction", "paper fraction"],
            [
                ("write-only", pop.write_only, f"{fr['write_only']:.3f}", "0.70"),
                ("read-only", pop.read_only, f"{fr['read_only']:.3f}", "0.23"),
                ("read-write", pop.read_write, f"{fr['read_write']:.3f}", "0.036"),
                ("untouched", pop.untouched, f"{fr['untouched']:.3f}", "0.039"),
            ],
        )
        + f"\nWO:RO ratio {pop.write_to_read_ratio:.2f} (paper ~3.1); "
        f"temporary opens {format_percent(pop.temporary_open_fraction, 2)} "
        f"(paper 0.61%)"
        + f"\nmean MB/file: written "
        f"{pop.mean_bytes_written_per_writing_file / 1e6:.2f} (paper 1.2), "
        f"read {pop.mean_bytes_read_per_reading_file / 1e6:.2f} (paper 3.3)",
    )

    assert pop.write_only > 1.5 * pop.read_only
    assert fr["read_write"] < 0.15
    assert pop.temporary_open_fraction < 0.05
    assert (
        pop.mean_bytes_read_per_reading_file
        > pop.mean_bytes_written_per_writing_file
    )
