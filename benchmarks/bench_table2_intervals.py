"""Table 2: number of distinct interval sizes used in each file.

Paper: 0 intervals 36.5 %, one 58.2 % (of which >99 % were interval zero,
i.e. consecutive), two 4.0 %, three 0.2 %, 4+ 1.0 % — access is highly
regular, the basis of the strided-interface recommendation.
"""

from conftest import show

from repro.core.intervals import interval_size_table, zero_interval_dominance
from repro.util.tables import format_table

PAPER_PCT = {"0": 36.5, "1": 58.2, "2": 4.0, "3": 0.2, "4+": 1.0}


def test_table2_interval_sizes(benchmark, frame):
    table = benchmark(interval_size_table, frame)

    total = sum(table.values())
    zero_dom = zero_interval_dominance(frame)
    show(
        "Table 2: distinct interval sizes per file",
        format_table(
            ["intervals", "files", "%", "paper %"],
            [
                (k, v, f"{100 * v / total:.1f}", PAPER_PCT[k])
                for k, v in table.items()
            ],
        )
        + f"\nsingle-interval files with interval 0: {100 * zero_dom:.1f}% "
        f"(paper >99%)",
    )

    assert (table["0"] + table["1"]) / total > 0.75   # regularity dominates
    assert table["4+"] / total < 0.10
    assert zero_dom > 0.9
