"""Ablation: sequential prefetching at the I/O nodes (§2.3 follow-up).

Miller & Katz found prefetching helped where caching did not; CFS itself
prefetched.  This bench adds tagged one-block-lookahead prefetching to
the Figure 9 simulation and sweeps the depth.
"""

from conftest import show

from repro.caching import simulate_io_node_prefetch
from repro.util.tables import format_percent, format_table

BUFFERS = 500


def _sweep(frame):
    return {
        depth: simulate_io_node_prefetch(frame, BUFFERS, n_io_nodes=10, depth=depth)
        for depth in (0, 1, 2, 4)
    }


def test_ablation_prefetch_depth(benchmark, frame):
    results = benchmark.pedantic(_sweep, args=(frame,), rounds=1, iterations=1)

    show(
        f"Ablation: prefetch depth at {BUFFERS} buffers",
        format_table(
            ["depth", "read hit rate", "prefetches", "accuracy"],
            [
                (d, f"{r.hit_rate:.3f}", r.prefetches_issued,
                 format_percent(r.prefetch_accuracy))
                for d, r in sorted(results.items())
            ],
        ),
    )

    base = results[0]
    assert base.prefetches_issued == 0
    # prefetching never hurts the hit rate on this workload, and depth 1
    # already captures most of the benefit (sequential streams)
    assert results[1].hit_rate >= base.hit_rate - 0.005
    assert results[4].hit_rate >= results[1].hit_rate - 0.02
