"""Perf benchmark: the drift engine's emission rate and equilibrium.

The drift engine ages a bounded namespace with randomized op churn
(:mod:`repro.workload.drift`); unlike the synthetic engine its cost is
dominated by the per-op Python loop, so its throughput is the number to
watch.  This benchmark generates one moderately long drift trace,
records events/sec (serial and fanned across workers) and the
steady-state live-file population in ``BENCH_drift.json``, and enforces
two floors: fanned output must equal the serial bytes (the engine's
core contract), and the final population must sit near the mix's
predicted ``c/(c+d)`` equilibrium — a drifting equilibrium means the
model, not the machine, regressed.

Methodology: each configuration is a fresh end-to-end run (best of
three) so RNG state can never leak between timings; the population
check uses the tail mean of :func:`~repro.workload.drift.population_curve`
to smooth binomial noise.
"""

import os
import time

from conftest import emit_json, show

from repro.util.tables import format_table
from repro.workload import DriftConfig, WorkloadGenerator, drift_scenario, population_curve

#: traced-period scale (fraction of 156 h); ~0.02 -> ~3 h of churn
SCALE = float(os.environ.get("REPRO_BENCH_DRIFT_SCALE", "0.02"))

SEED = 7

#: equilibrium tolerance: tail-mean population within this relative
#: band of tenants * files_per_tenant * c/(c+d)
EQUILIBRIUM_TOLERANCE = 0.20


def _run(workers=None):
    return WorkloadGenerator(drift_scenario(SCALE), seed=SEED).run(
        "direct", workers=workers
    )


def _best_of(rounds=3, **kwargs):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = _run(**kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _time_all() -> dict:
    serial_s, serial = _best_of()
    fanned_s, fanned = _best_of(workers=4)

    assert (fanned.frame.events == serial.frame.events).all(), (
        "fanned drift run diverged from serial bytes"
    )

    cfg = DriftConfig()
    _, pop = population_curve(serial.frame)
    tail = pop[len(pop) // 2:]
    target = (
        cfg.tenants * cfg.files_per_tenant
        * cfg.mix.steady_state_live_fraction
    )

    n = int(serial.frame.n_events)
    return {
        "scale": SCALE,
        "events": n,
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial_s,
        "fanned_seconds": fanned_s,
        "events_per_sec": n / serial_s,
        "fanned_events_per_sec": n / fanned_s,
        "steady_state_files": float(tail.mean()),
        "steady_state_target": target,
        "final_files": int(pop[-1]),
        "namespace_slots": cfg.tenants * cfg.files_per_tenant,
    }


def test_perf_drift(benchmark):
    results = benchmark.pedantic(_time_all, rounds=1, iterations=1)

    rows = [
        ("serial", f"{results['serial_seconds']:.2f}",
         f"{results['events_per_sec']:,.0f}"),
        ("workers=4", f"{results['fanned_seconds']:.2f}",
         f"{results['fanned_events_per_sec']:,.0f}"),
    ]
    show(
        f"Drift engine, drift_scenario({SCALE}) seed {SEED} "
        f"({results['events']:,} events; steady state "
        f"{results['steady_state_files']:.0f}/"
        f"{results['namespace_slots']} live files, "
        f"target {results['steady_state_target']:.0f})",
        format_table(["run", "seconds", "events/s"], rows),
    )
    emit_json("drift", results)

    target = results["steady_state_target"]
    assert abs(results["steady_state_files"] - target) <= (
        EQUILIBRIUM_TOLERANCE * target
    ), "drift population drifted away from the c/(c+d) equilibrium"
