"""§4.8: the combined compute-node + I/O-node cache experiment.

Paper: a single one-block buffer per compute node in front of 10 I/O
nodes with 50 buffers each reduced the I/O-node hit rate by only ~3 % —
most I/O-node hits come from *interprocess* locality, which a per-node
cache cannot capture.
"""

from conftest import show

from repro.caching import simulate_combined
from repro.util.tables import format_percent


def test_section48_combined_caches(benchmark, frame):
    res = benchmark.pedantic(
        simulate_combined, args=(frame,),
        kwargs={"compute_buffers": 1, "io_buffers_per_node": 50, "n_io_nodes": 10},
        rounds=1, iterations=1,
    )

    show(
        "§4.8: combined caches (1 compute buffer + 10 I/O nodes x 50 buffers)",
        f"I/O-node hit rate without compute layer: "
        f"{format_percent(res.io_hit_rate_without)}\n"
        f"I/O-node hit rate with compute layer:    "
        f"{format_percent(res.io_hit_rate_with)}\n"
        f"reduction: {format_percent(res.io_hit_rate_reduction)} (paper ~3%)\n"
        f"compute layer absorbed {res.requests_absorbed} requests at "
        f"{format_percent(res.compute_hit_rate)} hit rate",
    )

    assert res.io_hit_rate_without > 0.55
    assert 0.0 <= res.io_hit_rate_reduction < 0.25
