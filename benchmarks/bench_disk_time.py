"""§4.8's disk-level argument: I/O-node caches avoid extraneous disk I/O
and turn many small disk transfers into few large ones.

Replays the trace against the seek/rotate/transfer disk model with and
without I/O-node caches and reports operations, mean transfer size, and
disk busy time.
"""

from conftest import show

from repro.caching import simulate_disk_time
from repro.util.tables import format_table
from repro.util.units import format_bytes


def test_disk_time_with_and_without_cache(benchmark, frame):
    raw, cached = benchmark.pedantic(
        simulate_disk_time, args=(frame, 500),
        kwargs={"n_io_nodes": 10}, rounds=1, iterations=1,
    )

    show(
        "§4.8: disk activity, cacheless vs 500-buffer I/O-node caches",
        format_table(
            ["system", "disk ops", "mean op", "busy seconds", "eff. MB/s"],
            [
                ("cacheless", raw.n_disk_ops, format_bytes(raw.mean_op_bytes),
                 f"{raw.busy_seconds:.1f}", f"{raw.effective_bandwidth / 1e6:.2f}"),
                ("cached", cached.n_disk_ops, format_bytes(cached.mean_op_bytes),
                 f"{cached.busy_seconds:.1f}", f"{cached.effective_bandwidth / 1e6:.2f}"),
            ],
        )
        + f"\nbusy-time reduction: {1 - cached.busy_seconds / raw.busy_seconds:.1%}",
    )

    assert cached.n_disk_ops < raw.n_disk_ops
    assert cached.busy_seconds < raw.busy_seconds
    assert cached.mean_op_bytes >= raw.mean_op_bytes * 0.9
