"""Figure 1: time the machine spent at each concurrent-job level.

Paper: idle more than a quarter of the time; more than one job about
35 % of the time; as many as eight jobs at once.
"""

from conftest import show

from repro.core.jobstats import concurrency_profile
from repro.util.tables import format_percent, format_table


def test_fig1_job_concurrency(benchmark, frame):
    prof = benchmark(concurrency_profile, frame)

    body = format_table(
        ["jobs", "hours", "fraction"],
        [(l, s / 3600.0, f) for l, s, f in prof.rows()],
    )
    body += (
        f"\nidle {format_percent(prof.idle_fraction)} (paper >25%), "
        f">1 job {format_percent(prof.multiprogrammed_fraction)} (paper ~35%), "
        f"max {prof.max_level} (paper 8)"
    )
    show("Figure 1: concurrent jobs", body)

    assert prof.max_level <= 8
    assert 0.05 < prof.idle_fraction < 0.60
    assert prof.multiprogrammed_fraction > 0.10
