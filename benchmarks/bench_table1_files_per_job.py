"""Table 1: number of files opened per traced job.

Paper (of 470 traced jobs): 1 file: 71, 2: 15, 3: 24, 4: 120, 5+: 240 —
most jobs open only a few files, but the tail is long (one job opened
2217, roughly one per node per snapshot).
"""

from conftest import show

from repro.core.jobstats import files_per_job_table, max_files_one_job
from repro.util.tables import format_table

PAPER_PCT = {"1": 15.1, "2": 3.2, "3": 5.1, "4": 25.5, "5+": 51.1}


def test_table1_files_per_job(benchmark, frame):
    table = benchmark(files_per_job_table, frame)

    total = sum(table.values())
    show(
        "Table 1: files opened per traced job",
        format_table(
            ["files", "jobs", "%", "paper %"],
            [
                (k, v, f"{100 * v / total:.1f}", PAPER_PCT.get(k, "-"))
                for k, v in table.items()
            ],
        )
        + f"\nmax files one job opened: {max_files_one_job(frame)} (paper: 2217)",
    )

    assert table["5+"] / total > 0.25          # the long tail dominates
    assert (table["1"] + table["2"] + table["3"] + table["4"]) > 0
