"""§3.1's instrumentation-overhead claim, on our own pipeline.

The paper benchmarked the instrumented CFS library and found the added
cost "virtually undetectable in many cases", worst case 7 % on the NAS
NHT-1 I/O benchmark.  Here we time the same operation mix through the
bare file system and through the instrumented facade and report the
ratio (ours is a Python tracing layer, so the slowdown is larger in
relative terms — the point is that it is measured, bounded, and the
buffering does its job).
"""

import time

from conftest import show

from repro.cfs import ConcurrentFileSystem, InstrumentedCFS
from repro.trace.collector import Collector
from repro.trace.records import OpenFlags, TraceHeader
from repro.trace.writer import TraceWriter

N_OPS = 3000


def _drive(fs_like, with_unlink) -> float:
    """An NHT-1-ish mix: create, stream writes, read back, delete."""
    t0 = time.perf_counter()
    fd = fs_like.open("/bench", 0, 0, OpenFlags.READ | OpenFlags.WRITE | OpenFlags.CREATE)
    payload = b"\xaa" * 700
    for _ in range(N_OPS):
        fs_like.write(fd, payload)
    fs_like.lseek(fd, 0)
    for _ in range(N_OPS):
        fs_like.read(fd, 700)
    fs_like.close(fd)
    with_unlink("/bench")
    return time.perf_counter() - t0


def _run_pair():
    bare = ConcurrentFileSystem(n_io_nodes=4)
    t_bare = _drive(bare, lambda name: bare.unlink(name, 0))

    fs = ConcurrentFileSystem(n_io_nodes=4)
    collector = Collector(TraceHeader())
    writer = TraceWriter(collector, lambda n: (lambda: 0.0))
    traced = InstrumentedCFS(fs, writer, lambda n: (lambda: 0.0))
    t_traced = _drive(traced, lambda name: traced.unlink(name, 0, 0))
    traced.finish()
    return t_bare, t_traced, writer.message_savings


def test_instrumentation_overhead(benchmark):
    t_bare, t_traced, saving = benchmark.pedantic(_run_pair, rounds=3, iterations=1)

    overhead = t_traced / t_bare - 1.0
    show(
        "§3.1: instrumentation overhead",
        f"bare CFS:        {t_bare * 1000:.1f} ms for {2 * N_OPS} transfers\n"
        f"instrumented:    {t_traced * 1000:.1f} ms\n"
        f"overhead:        {overhead:+.1%} "
        f"(paper: worst case +7% on real hardware; ours is a Python layer)\n"
        f"message saving:  {saving:.1%} (paper: >90%)",
    )

    assert saving > 0.9
    # the buffered instrumentation must stay within a small constant
    # factor of the bare file system
    assert t_traced < 3.0 * t_bare
