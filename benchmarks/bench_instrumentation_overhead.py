"""§3.1's instrumentation-overhead claim, on our own pipeline.

The paper benchmarked the instrumented CFS library and found the added
cost "virtually undetectable in many cases", worst case 7 % on the NAS
NHT-1 I/O benchmark.  Here we time the same operation mix through the
bare file system and through the instrumented facade and report the
ratio (ours is a Python tracing layer, so the slowdown is larger in
relative terms — the point is that it is measured, bounded, and the
buffering does its job).
"""

import time

from conftest import emit_json, show

from repro import obs
from repro.cfs import ConcurrentFileSystem, InstrumentedCFS
from repro.core import characterize
from repro.trace.collector import Collector
from repro.trace.records import OpenFlags, TraceHeader
from repro.trace.writer import TraceWriter

N_OPS = 3000


def _drive(fs_like, with_unlink) -> float:
    """An NHT-1-ish mix: create, stream writes, read back, delete."""
    t0 = time.perf_counter()
    fd = fs_like.open("/bench", 0, 0, OpenFlags.READ | OpenFlags.WRITE | OpenFlags.CREATE)
    payload = b"\xaa" * 700
    for _ in range(N_OPS):
        fs_like.write(fd, payload)
    fs_like.lseek(fd, 0)
    for _ in range(N_OPS):
        fs_like.read(fd, 700)
    fs_like.close(fd)
    with_unlink("/bench")
    return time.perf_counter() - t0


def _run_pair():
    bare = ConcurrentFileSystem(n_io_nodes=4)
    t_bare = _drive(bare, lambda name: bare.unlink(name, 0))

    fs = ConcurrentFileSystem(n_io_nodes=4)
    collector = Collector(TraceHeader())
    writer = TraceWriter(collector, lambda n: (lambda: 0.0))
    traced = InstrumentedCFS(fs, writer, lambda n: (lambda: 0.0))
    t_traced = _drive(traced, lambda name: traced.unlink(name, 0, 0))
    traced.finish()
    return t_bare, t_traced, writer.message_savings


def test_instrumentation_overhead(benchmark):
    t_bare, t_traced, saving = benchmark.pedantic(_run_pair, rounds=3, iterations=1)

    overhead = t_traced / t_bare - 1.0
    show(
        "§3.1: instrumentation overhead",
        f"bare CFS:        {t_bare * 1000:.1f} ms for {2 * N_OPS} transfers\n"
        f"instrumented:    {t_traced * 1000:.1f} ms\n"
        f"overhead:        {overhead:+.1%} "
        f"(paper: worst case +7% on real hardware; ours is a Python layer)\n"
        f"message saving:  {saving:.1%} (paper: >90%)",
    )

    assert saving > 0.9
    # the buffered instrumentation must stay within a small constant
    # factor of the bare file system
    assert t_traced < 3.0 * t_bare


def _time_characterize(frame, rounds: int = 3) -> float:
    """Best-of-N characterization time with the current observer state."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        characterize(frame)
        best = min(best, time.perf_counter() - t0)
    return best


def _null_call_cost_s(calls: int = 200_000) -> float:
    """Per-call cost of the disabled observer, the way call sites use it:
    one ``enabled()`` guard, one counter add, one span enter/exit."""
    obs.disable()
    t0 = time.perf_counter()
    for _ in range(calls):
        if obs.enabled():
            obs.add("never")
        with obs.span("never"):
            pass
    return (time.perf_counter() - t0) / calls


def test_obs_overhead(frame):
    """The disabled ``repro.obs`` layer must cost (nearly) nothing.

    The disabled-mode overhead of one characterization is bounded by
    (number of instrumentation calls the run executes) × (cost of one
    null-observer call), as a fraction of the run's own time — the
    budget the CLI spends when ``--obs`` is off.  The enabled mode is
    timed head-to-head as well; it may cost more (it is doing work) but
    is reported so regressions are visible.
    """
    obs.disable()
    characterize(frame)  # warm caches (trace index, of_kind views)
    t_off = _time_characterize(frame)

    observer = obs.enable()
    t_on = _time_characterize(frame)
    obs.disable()

    # traced mode (obs v3): spans additionally land in a TraceLog ring
    from repro.obs import TraceContext

    obs.enable(TraceContext.root())
    t_traced = _time_characterize(frame)
    # every counter add and span entry the run performed, ×2 for the
    # enabled() guards that precede grouped counter adds
    n_calls = 2 * (
        sum(1 for _ in observer.counters) + observer.root.n_entries()
    )
    n_observed = len(observer.counters) + observer.root.n_nodes()
    obs.disable()

    per_call = _null_call_cost_s()
    disabled_overhead = (n_calls * per_call) / t_off
    enabled_overhead = t_on / t_off - 1.0
    traced_overhead = t_traced / t_off - 1.0
    show(
        "repro.obs: observation overhead on characterize()",
        f"obs disabled: {t_off * 1000:.1f} ms (null observer)\n"
        f"obs enabled:  {t_on * 1000:.1f} ms "
        f"({n_observed} spans+counters collected)\n"
        f"obs traced:   {t_traced * 1000:.1f} ms (+ TraceLog event ring)\n"
        f"null call cost: {per_call * 1e9:.0f} ns × ~{n_calls} calls -> "
        f"disabled-mode overhead {disabled_overhead:.4%}\n"
        f"enabled-mode overhead: {enabled_overhead:+.1%}\n"
        f"traced-mode overhead:  {traced_overhead:+.1%}",
    )
    emit_json(
        "obs_overhead",
        {
            "t_disabled_s": t_off,
            "t_enabled_s": t_on,
            "t_traced_s": t_traced,
            "null_call_cost_s": per_call,
            "n_instrumentation_calls": n_calls,
            "disabled_overhead": disabled_overhead,
            "enabled_overhead": enabled_overhead,
            "traced_overhead": traced_overhead,
            "n_events": int(frame.n_events),
            "n_observed_names": n_observed,
        },
    )
    # the promise the CLI makes when --obs is off
    assert disabled_overhead < 0.03
    # enabled-mode collection stays within a small factor of the analysis
    assert t_on < 2.0 * t_off
    # tracing adds an event append per span; still a small factor
    assert t_traced < 2.5 * t_off
