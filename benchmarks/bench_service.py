"""Perf benchmark: live service ingest vs the batch fused engine.

The trace service folds pushed chunks through the same
:class:`~repro.core.streaming.ChunkAccumulator` the batch engine scans
with, plus wire framing, HTTP round trips, and per-chunk locking.  This
benchmark measures that overhead end to end — one client streaming every
chunk of the bench trace into a local daemon, then pulling the report —
against ``characterize`` on the same frame, and records ingest
throughput in ``BENCH_service.json``.

The acceptance contract is correctness plus sanity, not a speed race
(the daemon exists for liveness, not throughput): the served report must
be byte-identical to batch, and ingest throughput must clear a floor far
below what loopback HTTP sustains.
"""

import time

from conftest import emit_json, show

from repro.core import characterize
from repro.service import ServiceClient, TraceService
from repro.trace.store import FrameSource
from repro.util.tables import format_table

#: small enough that chunk framing dominates, like real collectors
CHUNK_SIZE = 16384

#: events/second floor for loopback ingest (conservative by ~100x)
MIN_EVENTS_PER_S = 10_000.0


def test_service_ingest_vs_batch(benchmark, frame):
    t0 = time.perf_counter()
    batch_report = characterize(frame)
    batch_s = time.perf_counter() - t0
    batch_text = batch_report.render() + "\n"

    source = FrameSource(frame, chunk_size=CHUNK_SIZE)

    def ingest_round_trip():
        with TraceService() as svc:
            client = ServiceClient(svc.url)
            t1 = time.perf_counter()
            client.push(source, "bench")
            ingest_s = time.perf_counter() - t1
            t2 = time.perf_counter()
            text = client.report_text("bench")
            report_s = time.perf_counter() - t2
        return ingest_s, report_s, text

    ingest_s, report_s, served_text = benchmark.pedantic(
        ingest_round_trip, rounds=1, iterations=1
    )
    events_per_s = frame.n_events / ingest_s

    show(
        "Service ingest vs batch characterization",
        format_table(
            ["path", "seconds"],
            [
                ("batch characterize", f"{batch_s:.3f}"),
                (f"push {source.n_chunks} chunks", f"{ingest_s:.3f}"),
                ("serve report", f"{report_s:.3f}"),
            ],
        )
        + f"\ningest throughput: {events_per_s:,.0f} events/s",
    )

    emit_json(
        "service",
        {
            "bench": {
                "events": float(frame.n_events),
                "chunks": float(source.n_chunks),
                "chunk_size": float(CHUNK_SIZE),
                "batch_seconds": batch_s,
                "ingest_seconds": ingest_s,
                "report_seconds": report_s,
                "ingest_events_per_s": events_per_s,
                "report_identical": float(served_text == batch_text),
            }
        },
    )

    assert served_text == batch_text
    assert events_per_s >= MIN_EVENTS_PER_S
