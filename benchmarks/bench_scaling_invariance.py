"""Scale invariance: the shapes survive when the traced period grows.

The reproduction's central methodological claim is that the calibrated
*distributional shapes* do not depend on the traced period (only the
absolute counts do) — that is what licenses benchmarking at a fraction
of the paper's 156 hours.  This bench generates the same scenario at two
scales and compares the shape statistics.
"""

from conftest import _seed, show

from repro.core import characterize
from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

SCALES = (0.03, 0.09)


def _shapes(scale: float):
    frame = WorkloadGenerator(ames1993(scale), seed=_seed()).run("direct").frame
    report = characterize(frame)
    t2 = report.intervals
    total2 = sum(t2.values())
    return {
        "reads <4k (count)": report.reads.small_request_fraction,
        "writes <4k (count)": report.writes.small_request_fraction,
        "wo fully consecutive": (
            report.regularity.fully_consecutive_fraction("wo")
            if report.regularity else 0.0
        ),
        "files <=1 interval": (t2["0"] + t2["1"]) / total2,
        "mode-0 files": report.modes.mode0_file_fraction,
        "idle fraction": report.concurrency.idle_fraction,
    }


def test_shape_invariance_across_scales(benchmark):
    small = benchmark.pedantic(_shapes, args=(SCALES[0],), rounds=1, iterations=1)
    large = _shapes(SCALES[1])

    rows = [
        (name, f"{small[name]:.3f}", f"{large[name]:.3f}",
         f"{abs(small[name] - large[name]):.3f}")
        for name in small
    ]
    show(
        f"Shape statistics at scale {SCALES[0]} vs {SCALES[1]}",
        format_table(["statistic", "small", "large", "|delta|"], rows),
    )

    # per-file shape statistics move little with scale; per-request
    # fractions and concurrency carry rare-event variance (single jobs
    # can dominate a small sample, as in the paper)
    for name in ("files <=1 interval", "mode-0 files", "wo fully consecutive"):
        assert abs(small[name] - large[name]) < 0.15, name
    for name in ("reads <4k (count)", "writes <4k (count)", "idle fraction"):
        assert abs(small[name] - large[name]) < 0.30, name
