"""§4.6: CFS I/O mode usage.

Paper: over 99 % of files used mode 0 (independent pointers) — the
shared-pointer modes cannot express the multiple request/interval sizes
real files need, and were probably slower besides.
"""

from conftest import show

from repro.core.modes import mode_usage
from repro.util.tables import format_percent, format_table


def test_section46_mode_usage(benchmark, frame):
    usage = benchmark(mode_usage, frame)

    show(
        "§4.6: I/O mode usage",
        format_table(
            ["mode", "files", "fraction"],
            [(m, c, f) for (m, c), f in zip(
                sorted(usage.files_per_mode.items()),
                [usage.fractions()[m] for m in sorted(usage.files_per_mode)],
            )],
        )
        + f"\nmode-0 files: {format_percent(usage.mode0_file_fraction, 2)} "
        f"(paper >99%)",
    )

    assert usage.mode0_file_fraction > 0.97
