"""§5's cited write-policy study (Kotz & Ellis [19]) on our trace.

Compares write-through, write-back (flush on eviction), and WriteFull
(flush when a block fills) at the I/O nodes, in disk writes and disk
busy time.
"""

from conftest import show

from repro.caching import compare_write_policies
from repro.util.tables import format_table


def test_write_policies(benchmark, frame):
    results = benchmark.pedantic(
        compare_write_policies, args=(frame, 500), rounds=1, iterations=1,
    )

    rows = [
        (name, r.write_requests, r.disk_writes,
         f"{r.writes_per_request:.2f}", f"{r.disk_busy_seconds:.0f}")
        for name, r in results.items()
    ]
    show(
        "Write policies at the I/O nodes (500 buffers)",
        format_table(
            ["policy", "write requests", "disk writes", "writes/request", "busy s"],
            rows,
        ),
    )

    wt, wb, wf = (results[k] for k in ("write-through", "write-back", "write-full"))
    assert wb.disk_writes <= wt.disk_writes
    assert wf.disk_busy_seconds <= wb.disk_busy_seconds <= wt.disk_busy_seconds
