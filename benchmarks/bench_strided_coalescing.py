"""§5 extension: what a strided interface would save.

The paper's closing recommendation: let programs express regular
patterns as strided requests, "effectively increasing the request size
[and] lowering overhead".  This bench coalesces every (file, node)
stream and reports the request-count reduction.
"""

from conftest import show

from repro.strided import coalesce_trace
from repro.util.tables import format_table


def test_strided_interface_benefit(benchmark, frame):
    res = benchmark(coalesce_trace, frame)

    lengths = sorted(res.runs_by_length.items())
    top = lengths[-3:]
    show(
        "§5: strided-request coalescing",
        f"simple requests:  {res.simple_requests}\n"
        f"strided requests: {res.strided_requests}\n"
        f"reduction factor: {res.reduction_factor:.1f}x\n"
        f"requests coalesced into runs: {100 * res.fraction_coalesced:.1f}%\n"
        + format_table(["run length", "runs"], top, title="longest run lengths"),
    )

    assert res.reduction_factor > 5.0
    assert res.fraction_coalesced > 0.5
