"""Perf benchmark: legacy vs index-backed vs parallel characterization.

The §4 characterization used to re-sort and re-group the trace inside
every analyzer; the shared :class:`~repro.trace.index.TraceIndex` computes
those orderings once and the analyzers read grouped views.  On top of
that, ``characterize(frame, workers=N)`` fans the independent analysis
families out across forked worker processes.  This benchmark times all
three paths on the same traces at two scales, checks the acceptance
contract (byte-identical report text, >= 3x end-to-end speedup on the
bench trace), and records the trajectory in ``BENCH_characterize.json``.

Methodology (also in docs/DEVELOPMENT.md): the index and the ``of_kind``
views cache on the frame, so every timed run gets a *fresh* frame built
from the same event arrays — each path pays its own sort/group costs and
nothing leaks between paths.  Every path is timed as the best of three;
the first parallel run also absorbs pool start-up, which best-of-three
discharges the same way a long-lived analysis server would.
"""

import time

from conftest import emit_json, show

from repro.core import characterize
from repro.core.legacy import characterize_legacy
from repro.trace.frame import TraceFrame
from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

#: the second, smaller scale (the first is the session bench trace)
SMALL_SCALE = 0.02

#: acceptance floor for the bench-trace end-to-end speedup
MIN_SPEEDUP = 3.0

#: worker processes for the parallel path
WORKERS = 4


def _fresh(frame) -> TraceFrame:
    """The same events with cold caches (no index, no kind views)."""
    return TraceFrame(
        frame.events, jobs=frame.jobs, files=frame.files, header=frame.header
    )


def _best_of(run, frame, rounds: int = 3) -> tuple[float, str]:
    best = float("inf")
    text = ""
    for _ in range(rounds):
        f = _fresh(frame)
        t0 = time.perf_counter()
        report = run(f)
        best = min(best, time.perf_counter() - t0)
        text = report.render()
    return best, text


def _time_paths(frame) -> dict:
    legacy_s, legacy_text = _best_of(characterize_legacy, frame)
    indexed_s, indexed_text = _best_of(characterize, frame)
    parallel_s, parallel_text = _best_of(
        lambda f: characterize(f, workers=WORKERS), frame
    )

    assert indexed_text == legacy_text, (
        "index-backed report must equal the legacy report byte-for-byte"
    )
    assert parallel_text == legacy_text, (
        "parallel report must equal the legacy report byte-for-byte"
    )
    return {
        "events": int(frame.n_events),
        "legacy_seconds": legacy_s,
        "indexed_seconds": indexed_s,
        "parallel_seconds": parallel_s,
        "workers": WORKERS,
        "speedup_indexed": legacy_s / indexed_s,
        "speedup_parallel": legacy_s / parallel_s,
        "speedup_best": legacy_s / min(indexed_s, parallel_s),
        "report_identical": True,
    }


def test_perf_characterize(benchmark, frame):
    small_frame = WorkloadGenerator(
        ames1993(SMALL_SCALE), seed=7
    ).run("direct").frame

    results = benchmark.pedantic(
        lambda: {"bench": _time_paths(frame), "small": _time_paths(small_frame)},
        rounds=1, iterations=1,
    )

    rows = [
        (
            name,
            r["events"],
            f"{r['legacy_seconds']:.3f}",
            f"{r['indexed_seconds']:.3f}",
            f"{r['parallel_seconds']:.3f}",
            f"{r['speedup_indexed']:.1f}x",
            f"{r['speedup_parallel']:.1f}x",
        )
        for name, r in results.items()
    ]
    show(
        "characterize(): legacy vs shared index vs parallel fan-out",
        format_table(
            ["trace", "events", "legacy s", "indexed s",
             f"parallel s (N={WORKERS})", "indexed", "parallel"],
            rows,
        ),
    )
    emit_json("characterize", results)

    # the indexed/parallel offering must beat the legacy serial path by
    # >= 3x end-to-end on the bench trace (the smaller trace carries
    # proportionally more fixed overhead, so it only needs to win)
    assert results["bench"]["speedup_best"] >= MIN_SPEEDUP
    assert results["small"]["speedup_best"] > 1.0
