"""Perf benchmark: legacy vs indexed vs fused vs parallel characterization.

The §4 characterization has three generations: the legacy analyzers
re-sorted the trace inside every family; the shared
:class:`~repro.trace.index.TraceIndex` computes those orderings once and
the families read grouped views; and the fused engine
(``repro.core.streaming``) walks the event stream once, folding every
family's state in a single pass with no index at all.  On top of that,
``characterize(frame, workers=N)`` partitions the stream across worker
processes that share the trace zero-copy (fork CoW or shared memory).
This benchmark times all four paths on the same traces at two scales,
checks the acceptance contract (byte-identical report text, fused never
loses to indexed, >= 3x end-to-end speedup on the bench trace), and
records the trajectory in ``BENCH_characterize.json``.

Methodology (also in docs/DEVELOPMENT.md): the index and the ``of_kind``
views cache on the frame, so every timed run gets a *fresh* frame built
from the same event arrays — each path pays its own sort/group/scan
costs and nothing leaks between paths.  Every path is timed as the best
of three; the first parallel run also absorbs pool start-up, which
best-of-three discharges the same way a long-lived analysis server
would.  The parallel path fans out one worker per CPU (capped at 4): on
a single-core host it degenerates to the serial fused scan, which is
exactly what a deployment would run there.
"""

import os
import time

from conftest import emit_json, show

from repro.core import characterize
from repro.core.legacy import characterize_legacy
from repro.trace.frame import TraceFrame
from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

#: the second, smaller scale (the first is the session bench trace)
SMALL_SCALE = 0.02

#: acceptance floor for the bench-trace end-to-end speedup
MIN_SPEEDUP = 3.0

#: worker processes for the parallel path: the machine's width, capped
WORKERS = max(1, min(4, os.cpu_count() or 1))


def _fresh(frame) -> TraceFrame:
    """The same events with cold caches (no index, no kind views)."""
    return TraceFrame(
        frame.events, jobs=frame.jobs, files=frame.files, header=frame.header
    )


def _best_of(run, frame, rounds: int = 3) -> tuple[float, str]:
    best = float("inf")
    text = ""
    for _ in range(rounds):
        f = _fresh(frame)
        t0 = time.perf_counter()
        report = run(f)
        best = min(best, time.perf_counter() - t0)
        text = report.render()
    return best, text


def _time_paths(frame) -> dict:
    legacy_s, legacy_text = _best_of(characterize_legacy, frame)
    indexed_s, indexed_text = _best_of(
        lambda f: characterize(f, engine="indexed"), frame
    )
    fused_s, fused_text = _best_of(characterize, frame)
    parallel_s, parallel_text = _best_of(
        lambda f: characterize(f, workers=WORKERS), frame
    )

    assert indexed_text == legacy_text, (
        "index-backed report must equal the legacy report byte-for-byte"
    )
    assert fused_text == legacy_text, (
        "fused report must equal the legacy report byte-for-byte"
    )
    assert parallel_text == legacy_text, (
        "parallel report must equal the legacy report byte-for-byte"
    )
    return {
        "events": int(frame.n_events),
        "legacy_seconds": legacy_s,
        "indexed_seconds": indexed_s,
        "fused_seconds": fused_s,
        "parallel_seconds": parallel_s,
        "workers": WORKERS,
        "speedup_indexed": legacy_s / indexed_s,
        "speedup_fused": legacy_s / fused_s,
        "speedup_parallel": legacy_s / parallel_s,
        "speedup_best": legacy_s / min(indexed_s, fused_s, parallel_s),
        "report_identical": True,
    }


def test_perf_characterize(benchmark, frame):
    small_frame = WorkloadGenerator(
        ames1993(SMALL_SCALE), seed=7
    ).run("direct").frame

    results = benchmark.pedantic(
        lambda: {"bench": _time_paths(frame), "small": _time_paths(small_frame)},
        rounds=1, iterations=1,
    )

    rows = [
        (
            name,
            r["events"],
            f"{r['legacy_seconds']:.3f}",
            f"{r['indexed_seconds']:.3f}",
            f"{r['fused_seconds']:.3f}",
            f"{r['parallel_seconds']:.3f}",
            f"{r['speedup_indexed']:.1f}x",
            f"{r['speedup_fused']:.1f}x",
            f"{r['speedup_parallel']:.1f}x",
        )
        for name, r in results.items()
    ]
    show(
        "characterize(): legacy vs shared index vs fused one-pass vs parallel",
        format_table(
            ["trace", "events", "legacy s", "indexed s", "fused s",
             f"parallel s (N={WORKERS})", "indexed", "fused", "parallel"],
            rows,
        ),
    )
    emit_json("characterize", results)

    # the best offering must beat the legacy serial path by >= 3x
    # end-to-end on the bench trace (the smaller trace carries
    # proportionally more fixed overhead, so it only needs to win)
    assert results["bench"]["speedup_best"] >= MIN_SPEEDUP
    assert results["small"]["speedup_best"] > 1.0
    # the fused one-pass engine must never lose to the indexed engine
    for r in results.values():
        assert r["speedup_fused"] >= r["speedup_indexed"], (
            "fused engine regressed below the indexed engine"
        )
