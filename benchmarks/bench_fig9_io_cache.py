"""Figure 9: I/O-node caching simulation.

Paper: with LRU, ~4000 4 KB buffers (across all I/O nodes) reached a
90 % hit rate; FIFO needed nearly 20000; spreading the buffers over 1-20
I/O nodes made little difference.

Known reproduction gap: on these synthetic traces LRU and FIFO track
each other closely — the block-touch trains are almost perfectly
sequential, so refresh-on-hit rarely matters.  The documented qualitative
checks (high hit rate from a modest cache, LRU >= FIFO, I/O-node-count
insensitivity) all hold; see EXPERIMENTS.md.
"""

from conftest import show

from repro.caching import sweep_buffer_counts, sweep_lines
from repro.util.tables import format_table

COUNTS = [50, 125, 250, 500, 1000, 2000, 4000]


def test_fig9_io_node_cache(benchmark, frame):
    lru = benchmark.pedantic(
        sweep_buffer_counts, args=(frame, COUNTS),
        kwargs={"n_io_nodes": 10, "policy": "lru"}, rounds=1, iterations=1,
    )
    fifo = sweep_buffer_counts(frame, COUNTS, n_io_nodes=10, policy="fifo")

    rows = [
        ["lru"] + [f"{r:.3f}" for r in lru.hit_rates],
        ["fifo"] + [f"{r:.3f}" for r in fifo.hit_rates],
    ]
    show(
        "Figure 9: I/O-node cache hit rate vs total buffers",
        format_table(["policy"] + [str(c) for c in COUNTS], rows),
    )

    # a modest cache reaches a high read hit rate
    assert lru.hit_rates[-1] > 0.6
    # LRU never loses to FIFO (averaged over the sweep)
    assert lru.hit_rates.mean() >= fifo.hit_rates.mean() - 0.01
    # hit rate grows (weakly) with cache size
    assert lru.hit_rates[-1] >= lru.hit_rates[0] - 0.01


def test_fig9_io_node_count_insensitivity(benchmark, frame):
    """The figure's second observation: focusing the same buffers on few
    I/O nodes or spreading them over many changes the hit rate little."""
    def sweep():
        # four independent (policy, n_io_nodes) lines — fanned out
        # across processes where cores allow
        nodes = (1, 5, 10, 20)
        curves = sweep_lines(frame, [500], [("lru", n) for n in nodes])
        return {n: float(c.hit_rates[0]) for n, c in zip(nodes, curves)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "Figure 9 (inset): 500 buffers over varying I/O-node counts",
        format_table(["io nodes", "hit rate"], list(results.items())),
    )
    spread = max(results.values()) - min(results.values())
    assert spread < 0.15
