"""Perf benchmark: serial vs sharded full-pipeline simulation.

The ``full`` pipeline replays every job action through the simulated
machine — instrumented CFS calls, trace records, clocked collection —
and is the slowest path in the repo.  Three implementations coexist.
The **step replayer** (``replay_engine="step"``) issues one Python call
per action — the reference oracle.  The **vectorized replayer** (the
default) batches per-action dispatch and takes the zero-payload write
fast path.  The **sharded** runner (:mod:`repro.workload.sharded`)
splits the replay across forked worker processes and deterministically
merges the per-shard traces — byte-identical to the serial run by
construction (and re-checked here).

This benchmark times all of them end to end on one scenario, records
the events/sec scaling curve across shard counts in
``BENCH_full_pipeline.json``, and enforces the conservative floors: the
vectorized replayer must not fall behind the step oracle, shard output
must equal serial output byte for byte, and on a machine with enough
cores for the shards to actually run in parallel the 4-shard run must
reach twice the oracle's event rate.

Methodology: every configuration is a fresh end-to-end run (plan +
replay + merge + postprocess), timed as the best of three so one noisy
round cannot sink a ratio; sharded times include fork/IPC overhead, so
single-core hosts honestly record a slowdown rather than faking a gain.
"""

import os
import time

from conftest import emit_json, show

from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

#: traced-period scale for the bench scenario (full pipeline is heavy,
#: so this is smaller than the session bench trace)
SCALE = float(os.environ.get("REPRO_BENCH_FULL_SCALE", "0.02"))

SEED = 7

#: shard counts on the scaling curve (1 = the serial vectorized run)
SHARD_CURVE = (1, 2, 4)

#: the vectorized replayer must at least keep up with the step oracle
#: (it is ~1.3-2x faster; 0.9 absorbs timer noise on loaded hosts)
MIN_VECTOR_SPEEDUP = 0.9

#: ISSUE target: >= 2x the oracle event rate at 4 shards — only
#: enforceable where 4 shard processes can actually run in parallel
MIN_SHARD4_SPEEDUP = 2.0
MIN_CORES_FOR_SHARD_GATE = 4


def _run(shards=None, engine="vector"):
    gen = WorkloadGenerator(ames1993(SCALE), seed=SEED)
    if shards is None:
        return gen.engine._run_full(replay_engine=engine)
    return gen.run("full", shards=shards)


def _best_of(rounds=3, **kwargs):
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = _run(**kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _time_all() -> tuple[dict, dict]:
    step_s, step = _best_of(engine="step")
    vector_s, vector = _best_of()
    shard2_s, shard2 = _best_of(shards=2)
    shard4_s, shard4 = _best_of(shards=4)

    # the whole point of the sharded runner: identical bytes out
    ref = vector.raw.to_bytes()
    assert step.raw.to_bytes() == ref, "step and vector traces diverged"
    assert shard2.raw.to_bytes() == ref, "2-shard trace diverged from serial"
    assert shard4.raw.to_bytes() == ref, "4-shard trace diverged from serial"

    n = int(vector.frame.n_events)
    seconds = {
        "step": step_s, "vector": vector_s, "shard2": shard2_s,
        "shard4": shard4_s,
    }
    results = {
        "scale": SCALE,
        "events": n,
        "cpu_count": os.cpu_count(),
        **{f"{k}_seconds": v for k, v in seconds.items()},
        **{f"{k}_events_per_sec": n / v for k, v in seconds.items()},
        "speedup_vector": step_s / vector_s,
        "speedup_shard2": step_s / shard2_s,
        "speedup_shard4": step_s / shard4_s,
        "scaling": {
            "shards": list(SHARD_CURVE),
            "events_per_sec": [
                n / vector_s, n / shard2_s, n / shard4_s,
            ],
        },
    }
    return results, seconds


def test_perf_full_pipeline(benchmark):
    results, seconds = benchmark.pedantic(_time_all, rounds=1, iterations=1)

    rows = [
        (
            name,
            f"{secs:.2f}",
            f"{results['events'] / secs:,.0f}",
            f"{results['step_seconds'] / secs:.2f}x",
        )
        for name, secs in seconds.items()
    ]
    show(
        f"Full-pipeline simulation, ames1993({SCALE}) seed {SEED} "
        f"({results['events']:,} events, {results['cpu_count']} cores)",
        format_table(["engine", "seconds", "events/s", "vs step"], rows),
    )
    emit_json("full_pipeline", results)

    assert results["speedup_vector"] >= MIN_VECTOR_SPEEDUP, (
        "vectorized replayer fell behind the step oracle"
    )
    if (os.cpu_count() or 1) >= MIN_CORES_FOR_SHARD_GATE:
        assert results["speedup_shard4"] >= MIN_SHARD4_SPEEDUP, (
            "4-shard run below 2x the step oracle event rate "
            "despite having the cores for it"
        )
