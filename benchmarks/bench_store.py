"""Perf benchmark: out-of-core streaming vs full-frame characterization.

The chunked store exists so characterization RSS is bounded by the chunk
size, not the trace size (the paper's ~5 GB of raw traces never fit the
original all-in-memory pipeline).  This benchmark writes one store, then
characterizes it twice in *separate child processes* — once materialized
as a full frame, once streamed chunk by chunk — and compares each child's
peak RSS.  Child isolation is the whole methodology: peak RSS is a
process-lifetime high-water mark, so the two paths can never share an
interpreter.  Each child reads ``VmHWM`` from ``/proc/self/status``
rather than ``getrusage``: ``ru_maxrss`` survives ``exec`` on Linux, so
a child forked from a large parent would inherit the parent's peak and
mask its own.

Acceptance: identical report text, streaming peak RSS <= 50% of the
full-frame peak, at comparable wall time.  ``REPRO_BENCH_STORE_SCALE``
sizes the trace (default 0.5 — over a million events, so the event data
dominates the interpreter's fixed footprint in both children).

Results land in ``BENCH_store.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from conftest import emit_json, show

import repro
from repro.util.tables import format_table
from repro.workload import WorkloadGenerator, ames1993

#: trace scale for the RSS comparison (bigger than the session bench
#: trace: the gap only shows once event data dwarfs the interpreter)
STORE_SCALE = float(os.environ.get("REPRO_BENCH_STORE_SCALE", "0.5"))

STORE_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

#: events per chunk for the on-disk store (also bounds the sharing
#: windows, so it directly caps the streaming path's working set)
CHUNK_SIZE = 1 << 16

#: acceptance ceiling: streaming peak RSS as a fraction of full-frame
MAX_RSS_RATIO = 0.50

#: wall-time sanity bound: streaming must stay in the same ballpark
MAX_WALL_RATIO = 3.0

#: the child: characterize one store, print wall/RSS/report digest
_CHILD = """
import hashlib, json, sys, time

from repro.core import characterize
from repro.trace.store import TraceStore

def peak_rss_mb():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) / 1024.0  # kB -> MB
    raise RuntimeError("no VmHWM in /proc/self/status")

mode, path = sys.argv[1], sys.argv[2]
t0 = time.perf_counter()
with TraceStore(path) as store:
    if mode == "full":
        report = characterize(store.frame())
    else:
        report = characterize(store)
wall = time.perf_counter() - t0
print(json.dumps({
    "wall_seconds": wall,
    "peak_rss_mb": peak_rss_mb(),
    "report_sha256": hashlib.sha256(report.render().encode()).hexdigest(),
}))
"""


def _run_child(mode: str, store_path: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(store_path)],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    )
    return json.loads(out.stdout)


def test_store_streaming_rss(benchmark, tmp_path):
    from repro.trace.store import TraceStore, write_store

    workload = WorkloadGenerator(ames1993(STORE_SCALE), seed=STORE_SEED).run(
        "direct"
    )
    store_path = tmp_path / "bench.store"
    write_store(workload.frame, store_path, chunk_size=CHUNK_SIZE)
    with TraceStore(store_path) as store:
        n_events = store.n_events
        stored_mb = store.compressed_bytes / 2**20
        raw_mb = store.uncompressed_bytes / 2**20
    del workload  # the children do the measured work, not this process

    results = benchmark.pedantic(
        lambda: {
            "full": _run_child("full", store_path),
            "streaming": _run_child("streaming", store_path),
        },
        rounds=1,
        iterations=1,
    )
    full, streaming = results["full"], results["streaming"]
    rss_ratio = streaming["peak_rss_mb"] / full["peak_rss_mb"]
    wall_ratio = streaming["wall_seconds"] / full["wall_seconds"]

    show(
        "characterize(): full-frame vs out-of-core streaming (child processes)",
        format_table(
            ["path", "peak RSS (MB)", "wall (s)"],
            [
                ("full frame", f"{full['peak_rss_mb']:.0f}",
                 f"{full['wall_seconds']:.2f}"),
                ("streaming", f"{streaming['peak_rss_mb']:.0f}",
                 f"{streaming['wall_seconds']:.2f}"),
                ("ratio", f"{rss_ratio:.2f}", f"{wall_ratio:.2f}"),
            ],
        )
        + f"\ntrace: {n_events} events, store {stored_mb:.1f} MB "
        f"({raw_mb:.1f} MB raw), chunk size {CHUNK_SIZE}",
    )
    emit_json(
        "store",
        {
            "events": n_events,
            "scale": STORE_SCALE,
            "chunk_size": CHUNK_SIZE,
            "store_mb": round(stored_mb, 2),
            "store_raw_mb": round(raw_mb, 2),
            "full_rss_mb": round(full["peak_rss_mb"], 1),
            "streaming_rss_mb": round(streaming["peak_rss_mb"], 1),
            "rss_ratio": round(rss_ratio, 3),
            "full_wall_seconds": round(full["wall_seconds"], 3),
            "streaming_wall_seconds": round(streaming["wall_seconds"], 3),
            "wall_ratio": round(wall_ratio, 3),
            "report_identical": streaming["report_sha256"]
            == full["report_sha256"],
        },
    )

    assert streaming["report_sha256"] == full["report_sha256"], (
        "streaming report must match the full-frame report byte-for-byte"
    )
    assert rss_ratio <= MAX_RSS_RATIO, (
        f"streaming peak RSS is {rss_ratio:.0%} of full-frame "
        f"(ceiling {MAX_RSS_RATIO:.0%})"
    )
    assert wall_ratio <= MAX_WALL_RATIO, (
        f"streaming wall time is {wall_ratio:.1f}x full-frame "
        f"(ceiling {MAX_WALL_RATIO:.1f}x)"
    )
