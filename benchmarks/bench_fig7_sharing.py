"""Figure 7: byte- and block-level sharing in concurrently-opened files.

Paper: 70 % of multi-node read-only files had 100 % of their bytes
shared; 90 % of write-only files had none; block sharing exceeds byte
sharing (interprocess spatial locality — the reason I/O-node caching
works).
"""

import numpy as np
from conftest import show

from repro.core.sharing import sharing_per_file
from repro.util.tables import format_percent, format_table


def test_fig7_sharing(benchmark, frame):
    res = benchmark(sharing_per_file, frame)

    rows = []
    for label in ("ro", "wo", "rw"):
        bytes_, blocks = res.select(label)
        if len(bytes_) == 0:
            continue
        rows.append((
            label, len(bytes_),
            format_percent(float(np.mean(bytes_ >= 1.0))),
            format_percent(float(np.mean(bytes_ == 0.0))),
            format_percent(float(np.mean(blocks >= 1.0))),
        ))
    show(
        "Figure 7: sharing between nodes",
        format_table(
            ["class", "files", "100% bytes", "0% bytes", "100% blocks"], rows
        ),
    )

    ro_bytes, ro_blocks = res.select("ro")
    assert len(ro_bytes) > 0
    assert np.mean(ro_bytes >= 1.0) > 0.3      # broadcast-read population
    assert np.mean(ro_blocks) >= np.mean(ro_bytes)  # blocks shared at least as much
