"""§5's closing line, quantified: collective / disk-directed I/O.

Three interfaces over the same trace, measured in disk busy time:
per-request (no cache), per-request through the I/O-node caches, and
disk-directed (each file's traffic as one collective operation, each
I/O node sweeping its blocks sequentially).
"""

from conftest import show

from repro.caching import compare_interfaces
from repro.util.tables import format_table
from repro.util.units import format_bytes


def test_disk_directed_io(benchmark, frame):
    cmp = benchmark.pedantic(
        compare_interfaces, args=(frame,),
        kwargs={"cache_buffers": 500}, rounds=1, iterations=1,
    )

    rows = [
        ("per-request", cmp.per_request.n_disk_ops,
         format_bytes(cmp.per_request.mean_op_bytes),
         f"{cmp.per_request.busy_seconds:.0f}"),
        ("cached", cmp.cached.n_disk_ops,
         format_bytes(cmp.cached.mean_op_bytes),
         f"{cmp.cached.busy_seconds:.0f}"),
        ("disk-directed", cmp.disk_directed.n_disk_ops,
         format_bytes(cmp.disk_directed.mean_op_bytes),
         f"{cmp.disk_directed.busy_seconds:.0f}"),
    ]
    show(
        "§5: interface comparison at the disks",
        format_table(["interface", "disk ops", "mean op", "busy seconds"], rows)
        + f"\ndisk-directed speedup: {cmp.speedup_vs_per_request:.1f}x over "
        f"per-request, {cmp.speedup_vs_cached:.1f}x over cached",
    )

    assert cmp.speedup_vs_per_request > 2.0
    assert cmp.speedup_vs_cached > 1.0
