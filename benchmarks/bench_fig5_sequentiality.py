"""Figure 5: CDF of per-file sequential-access percentage.

Paper: spikes at 0 % and 100 % — files are either entirely sequential or
not at all; read-write files are primarily non-sequential; nearly all
read-only and write-only files are 100 % sequential.
"""

import numpy as np
from conftest import show

from repro.core.sequentiality import per_file_regularity
from repro.util.tables import format_percent, format_table


def test_fig5_sequentiality(benchmark, frame):
    reg = benchmark(per_file_regularity, frame)

    rows = []
    for label in ("ro", "wo", "rw"):
        seq, _ = reg.select(label)
        if len(seq) == 0:
            continue
        rows.append((
            label, len(seq),
            format_percent(float(np.mean(seq == 0.0))),
            format_percent(float(np.mean(seq >= 1.0))),
        ))
    show(
        "Figure 5: % of accesses sequential, per file",
        format_table(["class", "files", "at 0%", "at 100%"], rows),
    )

    seq = reg.sequential_fraction
    assert np.mean((seq == 0.0) | (seq >= 1.0)) > 0.6   # bimodal
    assert reg.fully_sequential_fraction("wo") > 0.8
    rw_seq, _ = reg.select("rw")
    if len(rw_seq):
        assert rw_seq.mean() < 0.6                       # rw mostly non-sequential
