"""Figure 4: CDF of reads by request size, and of data transferred.

Paper: 96.1 % of reads were under 4000 bytes but moved only 2.0 % of the
data; a small count peak at the 4 KB block size; a byte spike at 1 MB
contributed by (probably) a single job.
"""

from conftest import show

from repro.core.requests import request_size_cdfs, request_size_summary, size_spikes
from repro.trace.records import EventKind
from repro.util.tables import format_percent, format_table


def _both(frame):
    return (
        request_size_cdfs(frame, EventKind.READ),
        request_size_summary(frame, EventKind.READ),
    )


def test_fig4_read_sizes(benchmark, frame):
    (by_count, by_bytes), summary = benchmark(_both, frame)

    thresholds = [128, 512, 1024, 4000, 4096, 65536, 1 << 20]
    show(
        "Figure 4: read request sizes",
        format_table(
            ["size <=", "fraction of reads", "fraction of data"],
            [(t, by_count.at(t), by_bytes.at(t)) for t in thresholds],
        )
        + f"\n{summary.describe()} (paper: 96.1% / 2.0%)"
        + f"\nbyte spikes: {size_spikes(frame, weight_by_bytes=True, top=3)}",
    )

    assert summary.small_request_fraction > 0.80
    assert summary.small_byte_fraction < 0.20
    # count-vs-bytes divergence is the figure's whole point
    assert by_count.at(4000) - by_bytes.at(4000) > 0.5
