"""Ablation: replacement policies beyond the paper (§5 future work).

Compares LRU and FIFO against Belady's OPT (the offline upper bound) and
the interprocess-aware policy at a fixed cache size — quantifying the
headroom the paper's "replacement policies other than LRU or FIFO should
be developed" is pointing at.
"""

from conftest import show

from repro.caching import simulate_io_node_caches
from repro.util.tables import format_table

BUFFERS = 500


def _run_all(frame):
    return {
        policy: simulate_io_node_caches(
            frame, BUFFERS, n_io_nodes=10, policy=policy
        ).hit_rate
        for policy in ("fifo", "lru", "interprocess", "opt")
    }


def test_ablation_replacement_policies(benchmark, frame):
    rates = benchmark.pedantic(_run_all, args=(frame,), rounds=1, iterations=1)

    show(
        f"Ablation: policy comparison at {BUFFERS} total buffers",
        format_table(["policy", "read hit rate"], sorted(rates.items(), key=lambda kv: kv[1])),
    )

    # OPT bounds everything from above
    assert rates["opt"] >= rates["lru"] - 1e-9
    assert rates["opt"] >= rates["fifo"] - 1e-9
    # LRU does not lose to FIFO
    assert rates["lru"] >= rates["fifo"] - 0.02
