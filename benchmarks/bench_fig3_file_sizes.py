"""Figure 3: CDF of file sizes at close.

Paper: most files between 10 KB and 1 MB, with application-specific
clusters (≈25 KB and ≈250 KB); larger than general-purpose file systems,
smaller than vector-supercomputer files (users worked under a 7.6 GB /
10 MB/s ceiling).
"""

from conftest import show

from repro.core.filestats import file_size_cdf
from repro.util.tables import format_table
from repro.util.units import KB, MB


def test_fig3_file_sizes(benchmark, frame):
    cdf = benchmark(file_size_cdf, frame)

    thresholds = [100, KB, 10 * KB, 25 * KB, 100 * KB, 250 * KB, MB, 10 * MB]
    show(
        "Figure 3: file sizes at close",
        format_table(
            ["size <=", "CDF"],
            [(t, cdf.at(t)) for t in thresholds],
        )
        + f"\nmedian {cdf.median / KB:.0f} KB over {cdf.n} files",
    )

    mid_mass = cdf.at(MB) - cdf.at(10 * KB)
    assert mid_mass > 0.5            # the 10KB-1MB bulk
    assert cdf.at(100) < 0.1         # few tiny files
    assert cdf.median > 10 * KB
