"""Shared benchmark fixtures.

One calibrated workload is generated per session (the expensive part) and
every figure/table benchmark analyzes it.  ``REPRO_BENCH_SCALE`` scales
the traced period (default 0.06 — about 9.4 synthetic hours, a few
hundred thousand events; the shapes are scale-invariant).
"""

import json
import os
from pathlib import Path

import pytest

from repro.workload import WorkloadGenerator, ames1993


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.06"))


def _seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def workload():
    """The benchmark trace (generated once)."""
    return WorkloadGenerator(ames1993(_scale()), seed=_seed()).run("direct")


@pytest.fixture(scope="session")
def frame(workload):
    return workload.frame


def show(title: str, body: str) -> None:
    """Print a reproduction block (visible with ``pytest -s`` and in
    captured output on failure)."""
    bar = "=" * len(title)
    print(f"\n{title}\n{bar}\n{body}\n")


def emit_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` next to the benchmarks.

    Perf benchmarks use this to leave a machine-readable record
    (speedups, throughput) that is tracked across PRs.
    """
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
