"""Shared benchmark fixtures.

One calibrated workload is generated per session (the expensive part) and
every figure/table benchmark analyzes it.  ``REPRO_BENCH_SCALE`` scales
the traced period (default 0.06 — about 9.4 synthetic hours, a few
hundred thousand events; the shapes are scale-invariant).
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.workload import WorkloadGenerator, ames1993

#: layout version of the BENCH_*.json envelope written by emit_json
BENCH_SCHEMA = 1


def _scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.06"))


def _seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def workload():
    """The benchmark trace (generated once)."""
    return WorkloadGenerator(ames1993(_scale()), seed=_seed()).run("direct")


@pytest.fixture(scope="session")
def frame(workload):
    return workload.frame


def show(title: str, body: str) -> None:
    """Print a reproduction block (visible with ``pytest -s`` and in
    captured output on failure)."""
    bar = "=" * len(title)
    print(f"\n{title}\n{bar}\n{body}\n")


def flatten_metrics(payload, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a nested payload, dot-joined (lists by
    index, bools as 0/1) — the flat metric map ``repro obs diff`` gates
    on."""
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            out.update(flatten_metrics(value, f"{prefix}{key}."))
    elif isinstance(payload, (list, tuple)):
        for i, value in enumerate(payload):
            out.update(flatten_metrics(value, f"{prefix}{i}."))
    elif isinstance(payload, (bool, int, float)):
        out[prefix[:-1]] = float(payload)
    return out


def emit_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` next to the benchmarks.

    Perf benchmarks use this to leave a machine-readable record
    (speedups, throughput) that is tracked across PRs.  Every file
    shares one envelope regardless of the bench's own payload shape:
    schema version, bench name, timestamp, host info, the flat
    ``metrics`` map (every numeric leaf of ``payload``, dot-joined) the
    regression gate compares, and the original payload under ``raw``.
    """
    record = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "metrics": flatten_metrics(payload),
        "raw": payload,
    }
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
