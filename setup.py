"""Shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine has no network access and an old
setuptools that cannot build PEP 660 editable wheels, so we keep a classic
``setup.py`` to enable the legacy ``develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
